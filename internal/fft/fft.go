// Package fft implements complex discrete Fourier transforms of arbitrary
// length and 3-D transforms built from them. It replaces the FFTW
// dependency of the paper's implementation; the FMM uses it to turn M2L
// translations into circular convolutions over the regular
// equivalent-surface lattice (paper Section 1: "the multipole-to-local
// translations are accelerated using local FFTs").
//
// The transform is a recursive mixed-radix Cooley–Tukey decomposition
// with an O(p²) direct DFT for prime factors. The FMM always chooses
// 5-smooth grid sizes, so every factor is 2, 3, or 5; other lengths are
// supported (correctly but more slowly) for generality.
package fft

import (
	"math"
	"math/cmplx"
)

// Plan holds the precomputed root table for transforms of one length.
// A Plan is immutable after creation and safe for concurrent use.
type Plan struct {
	n       int
	w       []complex128 // w[j] = exp(-2πi j/n)
	winv    []complex128 // winv[j] = exp(+2πi j/n)
	factors []int        // prime factorization of n, ascending
	scratch int          // total gather scratch needed per transform
}

// NewPlan creates a transform plan for length n >= 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic("fft: length must be >= 1")
	}
	p := &Plan{n: n, w: make([]complex128, n), winv: make([]complex128, n)}
	for j := 0; j < n; j++ {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		p.w[j] = complex(c, s)
		p.winv[j] = complex(c, -s)
	}
	for m := n; m > 1; {
		f := smallestFactor(m)
		p.factors = append(p.factors, f)
		p.scratch += f
		m /= f
	}
	return p
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

// ScratchLen returns the gather-scratch length one transform of this
// plan needs (see ForwardScratch).
func (p *Plan) ScratchLen() int { return p.scratch }

// Forward computes dst = DFT(src) (negative exponent, unscaled).
// dst and src must both have length n and must not alias.
func (p *Plan) Forward(dst, src []complex128) {
	p.ForwardScratch(dst, src, make([]complex128, p.scratch))
}

// ForwardScratch is Forward with caller-provided gather scratch (length
// >= ScratchLen()); bulk transforms like Plan3 reuse one buffer across
// thousands of lines instead of allocating per call.
func (p *Plan) ForwardScratch(dst, src, scratch []complex128) {
	p.check(dst, src)
	p.rec(dst, src, p.n, 1, 1, p.w, 0, scratch)
}

// Inverse computes dst = IDFT(src), scaled by 1/n so that
// Inverse(Forward(x)) == x. dst and src must not alias.
func (p *Plan) Inverse(dst, src []complex128) {
	p.InverseScratch(dst, src, make([]complex128, p.scratch))
}

// InverseScratch is Inverse with caller-provided gather scratch (length
// >= ScratchLen()).
func (p *Plan) InverseScratch(dst, src, scratch []complex128) {
	p.check(dst, src)
	p.rec(dst, src, p.n, 1, 1, p.winv, 0, scratch)
	inv := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= inv
	}
}

func (p *Plan) check(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic("fft: slice length does not match plan")
	}
	if p.n > 0 && &dst[0] == &src[0] {
		panic("fft: dst must not alias src")
	}
}

// rec computes an n-point DFT of src (elements src[0], src[stride], ...)
// into dst (contiguous). wstep is N/n where N is the plan length; depth
// indexes into the factor list; buf is shared gather scratch partitioned
// by recursion depth.
func (p *Plan) rec(dst, src []complex128, n, stride, wstep int, w []complex128, depth int, buf []complex128) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	f := p.factors[depth]
	m := n / f
	if m == 1 {
		// Direct DFT for a prime length.
		for k := 0; k < n; k++ {
			s := complex(0, 0)
			for j := 0; j < n; j++ {
				s += src[j*stride] * w[(j*k%n)*wstep]
			}
			dst[k] = s
		}
		return
	}
	// Decimation in time: f interleaved sub-transforms of length m.
	for a := 0; a < f; a++ {
		p.rec(dst[a*m:(a+1)*m], src[a*stride:], m, stride*f, wstep*f, w, depth+1, buf)
	}
	// Combine with f-point butterflies: for output index k = c + d*m,
	// X[k] = Σ_a w_n^{a k} Y_a[c].
	g := buf[:f]
	buf = buf[f:]
	_ = buf
	for c := 0; c < m; c++ {
		for a := 0; a < f; a++ {
			g[a] = dst[a*m+c]
		}
		for d := 0; d < f; d++ {
			k := c + d*m
			s := g[0]
			for a := 1; a < f; a++ {
				s += g[a] * w[(a*k%n)*wstep]
			}
			dst[k] = s
		}
	}
}

func smallestFactor(n int) int {
	if n%2 == 0 {
		return 2
	}
	for f := 3; f*f <= n; f += 2 {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// NextSmooth returns the smallest 5-smooth integer (only prime factors
// 2, 3, 5) greater than or equal to n. The FMM picks convolution grid
// sizes with it so that every FFT factor has a fast butterfly.
func NextSmooth(n int) int {
	if n < 1 {
		return 1
	}
	for m := n; ; m++ {
		k := m
		for _, f := range []int{2, 3, 5} {
			for k%f == 0 {
				k /= f
			}
		}
		if k == 1 {
			return m
		}
	}
}

// Plan3 performs 3-D transforms on row-major data indexed [x][y][z]
// (z fastest). It is immutable and safe for concurrent use.
type Plan3 struct {
	nx, ny, nz int
	px, py, pz *Plan
}

// NewPlan3 creates a 3-D plan for an nx x ny x nz grid.
func NewPlan3(nx, ny, nz int) *Plan3 {
	p3 := &Plan3{nx: nx, ny: ny, nz: nz, px: NewPlan(nx)}
	p3.py = p3.px
	if ny != nx {
		p3.py = NewPlan(ny)
	}
	switch nz {
	case nx:
		p3.pz = p3.px
	case ny:
		p3.pz = p3.py
	default:
		p3.pz = NewPlan(nz)
	}
	return p3
}

// Size returns the total number of grid points nx*ny*nz.
func (p *Plan3) Size() int { return p.nx * p.ny * p.nz }

// Forward computes the in-place 3-D forward DFT of x (length Size).
func (p *Plan3) Forward(x []complex128) { p.apply(x, false) }

// Inverse computes the in-place 3-D inverse DFT of x, scaled by 1/Size.
func (p *Plan3) Inverse(x []complex128) { p.apply(x, true) }

func (p *Plan3) apply(x []complex128, inverse bool) {
	if len(x) != p.Size() {
		panic("fft: grid length does not match 3-D plan")
	}
	maxN := p.nx
	if p.ny > maxN {
		maxN = p.ny
	}
	if p.nz > maxN {
		maxN = p.nz
	}
	in := make([]complex128, maxN)
	out := make([]complex128, maxN)
	maxScratch := p.px.scratch
	if p.py.scratch > maxScratch {
		maxScratch = p.py.scratch
	}
	if p.pz.scratch > maxScratch {
		maxScratch = p.pz.scratch
	}
	scratch := make([]complex128, maxScratch)
	line := func(pl *Plan, base, stride, n int) {
		for i := 0; i < n; i++ {
			in[i] = x[base+i*stride]
		}
		if inverse {
			pl.InverseScratch(out[:n], in[:n], scratch)
		} else {
			pl.ForwardScratch(out[:n], in[:n], scratch)
		}
		for i := 0; i < n; i++ {
			x[base+i*stride] = out[i]
		}
	}
	// Along z (contiguous).
	for ix := 0; ix < p.nx; ix++ {
		for iy := 0; iy < p.ny; iy++ {
			line(p.pz, (ix*p.ny+iy)*p.nz, 1, p.nz)
		}
	}
	// Along y.
	for ix := 0; ix < p.nx; ix++ {
		for iz := 0; iz < p.nz; iz++ {
			line(p.py, ix*p.ny*p.nz+iz, p.nz, p.ny)
		}
	}
	// Along x.
	for iy := 0; iy < p.ny; iy++ {
		for iz := 0; iz < p.nz; iz++ {
			line(p.px, iy*p.nz+iz, p.ny*p.nz, p.nx)
		}
	}
}

// Convolve3 returns the circular convolution c[t] = Σ_s a[(t-s) mod n] b[s]
// of two cubic grids with side n, computed by direct summation. It is the
// reference implementation used to validate the Fourier-space path.
func Convolve3(a, b []complex128, n int) []complex128 {
	c := make([]complex128, n*n*n)
	idx := func(x, y, z int) int { return (x*n+y)*n + z }
	for tx := 0; tx < n; tx++ {
		for ty := 0; ty < n; ty++ {
			for tz := 0; tz < n; tz++ {
				s := complex(0, 0)
				for sx := 0; sx < n; sx++ {
					for sy := 0; sy < n; sy++ {
						for sz := 0; sz < n; sz++ {
							s += a[idx(mod(tx-sx, n), mod(ty-sy, n), mod(tz-sz, n))] * b[idx(sx, sy, sz)]
						}
					}
				}
				c[idx(tx, ty, tz)] = s
			}
		}
	}
	return c
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// Abs returns |z| (convenience re-export used by tests and the harness).
func Abs(z complex128) float64 { return cmplx.Abs(z) }

// Package fft implements complex and real-input discrete Fourier
// transforms of arbitrary length and 3-D transforms built from them. It
// replaces the FFTW dependency of the paper's implementation; the FMM
// uses it to turn M2L translations into circular convolutions over the
// regular equivalent-surface lattice (paper Section 1: "the
// multipole-to-local translations are accelerated using local FFTs").
//
// The transform is a recursive mixed-radix Cooley–Tukey decomposition.
// The FMM always chooses 5-smooth grid sizes, so the hot path runs
// entirely on hardcoded radix-2/3/4/5 butterfly kernels (twiddles read
// straight from the precomputed root table, no modular index
// arithmetic); other lengths are supported for generality through a
// generic combine step and an O(p²) direct DFT for prime factors >= 7.
//
// Densities and kernel tensors in the FMM are purely real, so the
// package also provides real-to-complex transforms (ForwardReal /
// InverseReal and the 3-D Plan3R): conjugate symmetry means only
// ⌊n/2⌋+1 of the n Fourier coefficients are independent, halving the
// storage, Hadamard and inverse-transform work of the convolution.
package fft

import (
	"math"
	"math/cmplx"
	"sync"
)

// Plan holds the precomputed root table for transforms of one length.
// A Plan is immutable after creation and safe for concurrent use.
type Plan struct {
	n       int
	w       []complex128 // w[j] = exp(-2πi j/n)
	winv    []complex128 // winv[j] = exp(+2πi j/n)
	factors []int        // mixed-radix factorization of n (4s first, then 2, 3, 5, primes)
	scratch int          // gather scratch for generic combines (largest factor >= 7, else 0)
	half    *Plan        // length n/2 companion for the even-length real transforms
}

// NewPlan creates a transform plan for length n >= 1.
func NewPlan(n int) *Plan {
	p := newPlan(n)
	if n%2 == 0 {
		// Companion plan for the packed even-length real transforms. One
		// level suffices — the real path only ever halves once.
		p.half = newPlan(n / 2)
	}
	return p
}

// newPlan builds the root table and factorization for one length,
// without the real-transform companion.
func newPlan(n int) *Plan {
	if n < 1 {
		panic("fft: length must be >= 1")
	}
	p := &Plan{n: n, w: make([]complex128, n), winv: make([]complex128, n)}
	for j := 0; j < n; j++ {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		p.w[j] = complex(c, s)
		p.winv[j] = complex(c, -s)
	}
	p.factors = factorize(n)
	for _, f := range p.factors {
		if f >= 7 && f > p.scratch {
			p.scratch = f
		}
	}
	return p
}

// factorize returns the mixed-radix factor list: radix-4 stages first
// (fewer, wider butterflies than radix-2 pairs), then at most one 2,
// then 3s, 5s, and any remaining primes ascending.
func factorize(n int) []int {
	var fs []int
	for n%4 == 0 {
		fs = append(fs, 4)
		n /= 4
	}
	if n%2 == 0 {
		fs = append(fs, 2)
		n /= 2
	}
	for n%3 == 0 {
		fs = append(fs, 3)
		n /= 3
	}
	for n%5 == 0 {
		fs = append(fs, 5)
		n /= 5
	}
	for f := 7; f*f <= n; f += 2 {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

// HalfLen returns the number of independent Fourier coefficients of a
// real input of this length: n/2 + 1 (conjugate symmetry determines the
// rest).
func (p *Plan) HalfLen() int { return p.n/2 + 1 }

// ScratchLen returns the gather-scratch length one transform of this
// plan needs (see ForwardScratch). It is zero for 5-smooth lengths,
// whose butterflies are all hardcoded.
func (p *Plan) ScratchLen() int { return p.scratch }

// RealScratchLen returns the scratch length ForwardRealScratch and
// InverseRealScratch need.
func (p *Plan) RealScratchLen() int {
	if p.half != nil {
		return p.n + p.half.scratch
	}
	return 2*p.n + p.scratch
}

// Forward computes dst = DFT(src) (negative exponent, unscaled).
// dst and src must both have length n and must not alias.
func (p *Plan) Forward(dst, src []complex128) {
	p.ForwardScratch(dst, src, make([]complex128, p.scratch))
}

// ForwardScratch is Forward with caller-provided gather scratch (length
// >= ScratchLen()); bulk transforms like Plan3 reuse one buffer across
// thousands of lines instead of allocating per call.
func (p *Plan) ForwardScratch(dst, src, scratch []complex128) {
	p.check(dst, src)
	p.rec(dst, src, p.n, 1, 1, 0, p.w, -1, scratch)
}

// Inverse computes dst = IDFT(src), scaled by 1/n so that
// Inverse(Forward(x)) == x. dst and src must not alias.
func (p *Plan) Inverse(dst, src []complex128) {
	p.InverseScratch(dst, src, make([]complex128, p.scratch))
}

// InverseScratch is Inverse with caller-provided gather scratch (length
// >= ScratchLen()).
func (p *Plan) InverseScratch(dst, src, scratch []complex128) {
	p.check(dst, src)
	p.rec(dst, src, p.n, 1, 1, 0, p.winv, 1, scratch)
	inv := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= inv
	}
}

// ForwardReal computes the first HalfLen() coefficients of the DFT of a
// real signal (the remaining ones follow from X[n-k] = conj(X[k])).
// dst must have length HalfLen(), src length n.
func (p *Plan) ForwardReal(dst []complex128, src []float64) {
	p.ForwardRealScratch(dst, src, make([]complex128, p.RealScratchLen()))
}

// ForwardRealScratch is ForwardReal with caller-provided scratch
// (length >= RealScratchLen()).
//
// For even n the real line is packed into a half-length complex signal
// (z[j] = x[2j] + i·x[2j+1]), transformed with the half-length plan and
// unpacked — a real transform at roughly half the complex cost. Odd
// lengths fall back to a full complex transform.
func (p *Plan) ForwardRealScratch(dst []complex128, src []float64, scratch []complex128) {
	n := p.n
	if len(dst) != p.HalfLen() || len(src) != n {
		panic("fft: slice length does not match plan")
	}
	if n == 1 {
		dst[0] = complex(src[0], 0)
		return
	}
	if p.half == nil {
		// Odd length: widen to complex and keep the first half spectrum.
		in := scratch[:n]
		out := scratch[n : 2*n]
		for j, v := range src {
			in[j] = complex(v, 0)
		}
		p.rec(out, in, n, 1, 1, 0, p.w, -1, scratch[2*n:])
		copy(dst, out[:len(dst)])
		return
	}
	m := n / 2
	z := scratch[:m]
	for j := 0; j < m; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	zf := scratch[m : 2*m]
	p.half.rec(zf, z, m, 1, 1, 0, p.half.w, -1, scratch[2*m:])
	// Unpack: with E/O the spectra of the even/odd samples,
	// E[k] = (Z[k]+conj(Z[m-k]))/2, O[k] = -i(Z[k]-conj(Z[m-k]))/2 and
	// X[k] = E[k] + w_n^k O[k] for k = 0..m (indices mod m).
	for k := 0; k <= m; k++ {
		zk := zf[0]
		if k < m {
			zk = zf[k]
		}
		zmk := zf[0]
		if k > 0 && k < m {
			zmk = zf[m-k]
		}
		cz := complex(real(zmk), -imag(zmk))
		e := (zk + cz) / 2
		o := (zk - cz) / 2
		o = complex(imag(o), -real(o)) // -i * o
		dst[k] = e + p.w[k]*o
	}
}

// InverseReal computes the real inverse DFT (scaled by 1/n) of a
// conjugate-symmetric spectrum given by its first HalfLen()
// coefficients, so that InverseReal(ForwardReal(x)) == x. dst must have
// length n, src length HalfLen(). src is read-only.
func (p *Plan) InverseReal(dst []float64, src []complex128) {
	p.InverseRealScratch(dst, src, make([]complex128, p.RealScratchLen()))
}

// InverseRealScratch is InverseReal with caller-provided scratch
// (length >= RealScratchLen()).
func (p *Plan) InverseRealScratch(dst []float64, src []complex128, scratch []complex128) {
	n := p.n
	if len(dst) != n || len(src) != p.HalfLen() {
		panic("fft: slice length does not match plan")
	}
	if n == 1 {
		dst[0] = real(src[0])
		return
	}
	if p.half == nil {
		// Odd length: rebuild the full spectrum by symmetry and take the
		// real part of a complex inverse.
		full := scratch[:n]
		copy(full, src)
		for j := len(src); j < n; j++ {
			v := src[n-j]
			full[j] = complex(real(v), -imag(v))
		}
		out := scratch[n : 2*n]
		p.rec(out, full, n, 1, 1, 0, p.winv, 1, scratch[2*n:])
		inv := 1 / float64(n)
		for j := 0; j < n; j++ {
			dst[j] = real(out[j]) * inv
		}
		return
	}
	// Repack: Z[k] = E[k] + i·O[k] with E[k] = (X[k]+conj(X[m-k]))/2 and
	// O[k] = w_n^{-k}(X[k]-conj(X[m-k]))/2; the half-length inverse then
	// yields z[j] = x[2j] + i·x[2j+1] (its 1/m scaling is exactly the 1/n
	// the full inverse needs).
	m := n / 2
	zf := scratch[:m]
	for k := 0; k < m; k++ {
		xk := src[k]
		xmk := src[m-k]
		cx := complex(real(xmk), -imag(xmk))
		e := (xk + cx) / 2
		o := (xk - cx) / 2 * p.winv[k]
		zf[k] = e + complex(-imag(o), real(o)) // e + i*o
	}
	z := scratch[m : 2*m]
	p.half.rec(z, zf, m, 1, 1, 0, p.half.winv, 1, scratch[2*m:])
	inv := 1 / float64(m)
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j]) * inv
		dst[2*j+1] = imag(z[j]) * inv
	}
}

func (p *Plan) check(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic("fft: slice length does not match plan")
	}
	if p.n > 0 && &dst[0] == &src[0] {
		panic("fft: dst must not alias src")
	}
}

// rec computes an n-point DFT of src (elements src[0], src[stride], ...)
// into dst (contiguous). wstep is N/n where N is the plan length; depth
// indexes into the factor list; sign is -1 for the forward direction
// and +1 for the inverse (it orients the hardcoded butterflies; the
// matching root table w is passed alongside); buf is gather scratch for
// the generic combine of factors >= 7.
func (p *Plan) rec(dst, src []complex128, n, stride, wstep, depth int, w []complex128, sign float64, buf []complex128) {
	switch n {
	case 1:
		dst[0] = src[0]
		return
	case 2:
		leaf2(dst, src, stride)
		return
	case 3:
		leaf3(dst, src, stride, sign)
		return
	case 4:
		leaf4(dst, src, stride, sign)
		return
	case 5:
		leaf5(dst, src, stride, sign)
		return
	}
	f := p.factors[depth]
	m := n / f
	if m == 1 {
		// Direct DFT for a prime length >= 7.
		for k := 0; k < n; k++ {
			s := complex(0, 0)
			for j := 0; j < n; j++ {
				s += src[j*stride] * w[(j*k%n)*wstep]
			}
			dst[k] = s
		}
		return
	}
	// Decimation in time: f interleaved sub-transforms of length m,
	// combined with f-point butterflies.
	for a := 0; a < f; a++ {
		p.rec(dst[a*m:(a+1)*m], src[a*stride:], m, stride*f, wstep*f, depth+1, w, sign, buf)
	}
	switch f {
	case 2:
		combine2(dst, m, wstep, w)
	case 3:
		combine3(dst, m, wstep, w, sign)
	case 4:
		combine4(dst, m, wstep, w, sign)
	case 5:
		combine5(dst, m, wstep, w, sign)
	default:
		combineGeneric(dst, n, f, m, wstep, w, buf)
	}
}

// muli returns i*sign*z.
func muli(z complex128, sign float64) complex128 {
	return complex(-sign*imag(z), sign*real(z))
}

// scale returns s*z for real s.
func scale(z complex128, s float64) complex128 {
	return complex(s*real(z), s*imag(z))
}

func leaf2(dst, src []complex128, stride int) {
	x0, x1 := src[0], src[stride]
	dst[0] = x0 + x1
	dst[1] = x0 - x1
}

const sin60 = 0.8660254037844386 // sin(π/3)

func leaf3(dst, src []complex128, stride int, sign float64) {
	x0, x1, x2 := src[0], src[stride], src[2*stride]
	s := x1 + x2
	d := muli(scale(x1-x2, sin60), sign)
	u := x0 - s/2
	dst[0] = x0 + s
	dst[1] = u + d
	dst[2] = u - d
}

func leaf4(dst, src []complex128, stride int, sign float64) {
	x0, x1 := src[0], src[stride]
	x2, x3 := src[2*stride], src[3*stride]
	a, b := x0+x2, x0-x2
	c, d := x1+x3, muli(x1-x3, sign)
	dst[0] = a + c
	dst[1] = b + d
	dst[2] = a - c
	dst[3] = b - d
}

// 5th roots of unity: cos/sin of 2π/5 and 4π/5.
const (
	cos5a = 0.30901699437494745
	cos5b = -0.8090169943749475
	sin5a = 0.9510565162951535
	sin5b = 0.5877852522924731
)

func leaf5(dst, src []complex128, stride int, sign float64) {
	x0 := src[0]
	x1, x2 := src[stride], src[2*stride]
	x3, x4 := src[3*stride], src[4*stride]
	p1, m1 := x1+x4, x1-x4
	p2, m2 := x2+x3, x2-x3
	u1 := x0 + scale(p1, cos5a) + scale(p2, cos5b)
	u2 := x0 + scale(p1, cos5b) + scale(p2, cos5a)
	v1 := muli(scale(m1, sin5a)+scale(m2, sin5b), sign)
	v2 := muli(scale(m1, sin5b)-scale(m2, sin5a), sign)
	dst[0] = x0 + p1 + p2
	dst[1] = u1 + v1
	dst[2] = u2 + v2
	dst[3] = u2 - v2
	dst[4] = u1 - v1
}

// The combine kernels implement the Cooley–Tukey recombination
// X[c+d*m] = Σ_a ω_f^{ad} (w_n^{ac} Y_a[c]) for one hardcoded radix f:
// twiddle each sub-transform output, then apply the same butterfly as
// the matching leaf kernel. Twiddle indices a*c*wstep stay below the
// table length by construction (a*c <= (f-1)(m-1) < n), so no modular
// reduction is needed.

func combine2(dst []complex128, m, wstep int, w []complex128) {
	for c := 0; c < m; c++ {
		t := w[c*wstep] * dst[m+c]
		x := dst[c]
		dst[c] = x + t
		dst[m+c] = x - t
	}
}

func combine3(dst []complex128, m, wstep int, w []complex128, sign float64) {
	for c := 0; c < m; c++ {
		t1 := w[c*wstep] * dst[m+c]
		t2 := w[2*c*wstep] * dst[2*m+c]
		x0 := dst[c]
		s := t1 + t2
		d := muli(scale(t1-t2, sin60), sign)
		u := x0 - s/2
		dst[c] = x0 + s
		dst[m+c] = u + d
		dst[2*m+c] = u - d
	}
}

func combine4(dst []complex128, m, wstep int, w []complex128, sign float64) {
	for c := 0; c < m; c++ {
		t1 := w[c*wstep] * dst[m+c]
		t2 := w[2*c*wstep] * dst[2*m+c]
		t3 := w[3*c*wstep] * dst[3*m+c]
		x0 := dst[c]
		a, b := x0+t2, x0-t2
		s, d := t1+t3, muli(t1-t3, sign)
		dst[c] = a + s
		dst[m+c] = b + d
		dst[2*m+c] = a - s
		dst[3*m+c] = b - d
	}
}

func combine5(dst []complex128, m, wstep int, w []complex128, sign float64) {
	for c := 0; c < m; c++ {
		t1 := w[c*wstep] * dst[m+c]
		t2 := w[2*c*wstep] * dst[2*m+c]
		t3 := w[3*c*wstep] * dst[3*m+c]
		t4 := w[4*c*wstep] * dst[4*m+c]
		x0 := dst[c]
		p1, m1 := t1+t4, t1-t4
		p2, m2 := t2+t3, t2-t3
		u1 := x0 + scale(p1, cos5a) + scale(p2, cos5b)
		u2 := x0 + scale(p1, cos5b) + scale(p2, cos5a)
		v1 := muli(scale(m1, sin5a)+scale(m2, sin5b), sign)
		v2 := muli(scale(m1, sin5b)-scale(m2, sin5a), sign)
		dst[c] = x0 + p1 + p2
		dst[m+c] = u1 + v1
		dst[2*m+c] = u2 + v2
		dst[3*m+c] = u2 - v2
		dst[4*m+c] = u1 - v1
	}
}

// combineGeneric is the fallback recombination for prime factors >= 7;
// g is gather scratch of length >= f.
func combineGeneric(dst []complex128, n, f, m, wstep int, w []complex128, g []complex128) {
	g = g[:f]
	for c := 0; c < m; c++ {
		for a := 0; a < f; a++ {
			g[a] = dst[a*m+c]
		}
		for d := 0; d < f; d++ {
			k := c + d*m
			s := g[0]
			for a := 1; a < f; a++ {
				s += g[a] * w[(a*k%n)*wstep]
			}
			dst[k] = s
		}
	}
}

// NextSmooth returns the smallest 5-smooth integer (only prime factors
// 2, 3, 5) greater than or equal to n. The FMM picks convolution grid
// sizes with it so that every FFT factor has a fast butterfly.
func NextSmooth(n int) int {
	if n < 1 {
		return 1
	}
	for m := n; ; m++ {
		k := m
		for _, f := range []int{2, 3, 5} {
			for k%f == 0 {
				k /= f
			}
		}
		if k == 1 {
			return m
		}
	}
}

// Plan3 performs 3-D transforms on row-major data indexed [x][y][z]
// (z fastest). It is immutable and safe for concurrent use.
type Plan3 struct {
	nx, ny, nz int
	px, py, pz *Plan
}

// NewPlan3 creates a 3-D plan for an nx x ny x nz grid.
func NewPlan3(nx, ny, nz int) *Plan3 {
	p3 := &Plan3{nx: nx, ny: ny, nz: nz, px: NewPlan(nx)}
	p3.py = p3.px
	if ny != nx {
		p3.py = NewPlan(ny)
	}
	switch nz {
	case nx:
		p3.pz = p3.px
	case ny:
		p3.pz = p3.py
	default:
		p3.pz = NewPlan(nz)
	}
	return p3
}

// Size returns the total number of grid points nx*ny*nz.
func (p *Plan3) Size() int { return p.nx * p.ny * p.nz }

// Forward computes the in-place 3-D forward DFT of x (length Size).
func (p *Plan3) Forward(x []complex128) { p.apply(x, false) }

// Inverse computes the in-place 3-D inverse DFT of x, scaled by 1/Size.
func (p *Plan3) Inverse(x []complex128) { p.apply(x, true) }

func (p *Plan3) apply(x []complex128, inverse bool) {
	if len(x) != p.Size() {
		panic("fft: grid length does not match 3-D plan")
	}
	maxN := p.nx
	if p.ny > maxN {
		maxN = p.ny
	}
	if p.nz > maxN {
		maxN = p.nz
	}
	in := make([]complex128, maxN)
	out := make([]complex128, maxN)
	maxScratch := p.px.scratch
	if p.py.scratch > maxScratch {
		maxScratch = p.py.scratch
	}
	if p.pz.scratch > maxScratch {
		maxScratch = p.pz.scratch
	}
	scratch := make([]complex128, maxScratch)
	line := func(pl *Plan, base, stride, n int) {
		for i := 0; i < n; i++ {
			in[i] = x[base+i*stride]
		}
		if inverse {
			pl.InverseScratch(out[:n], in[:n], scratch)
		} else {
			pl.ForwardScratch(out[:n], in[:n], scratch)
		}
		for i := 0; i < n; i++ {
			x[base+i*stride] = out[i]
		}
	}
	// Along z (contiguous).
	for ix := 0; ix < p.nx; ix++ {
		for iy := 0; iy < p.ny; iy++ {
			line(p.pz, (ix*p.ny+iy)*p.nz, 1, p.nz)
		}
	}
	// Along y.
	for ix := 0; ix < p.nx; ix++ {
		for iz := 0; iz < p.nz; iz++ {
			line(p.py, ix*p.ny*p.nz+iz, p.nz, p.ny)
		}
	}
	// Along x.
	for iy := 0; iy < p.ny; iy++ {
		for iz := 0; iz < p.nz; iz++ {
			line(p.px, iy*p.nz+iz, p.ny*p.nz, p.nx)
		}
	}
}

// Plan3R performs real-input 3-D transforms on a cubic m×m×m grid.
// The forward transform maps real row-major data indexed [x][y][z]
// (z fastest) to the half spectrum indexed [kx][ky][kz] with
// kz in [0, m/2+1): the z-dimension keeps only its independent Fourier
// lines (real input makes F[-kx,-ky,-kz] = conj(F[kx,ky,kz])), so a
// convolution pays ~half the Hadamard, storage and inverse-transform
// cost of the full complex grid. Multiplying two half spectra
// element-wise and inverse-transforming computes the circular
// convolution of the real inputs exactly.
//
// A Plan3R is immutable and safe for concurrent use (per-call work
// buffers are pooled internally).
type Plan3R struct {
	m, k int
	p    *Plan
	pool sync.Pool
}

// r3scratch carries one in-flight transform's line buffers.
type r3scratch struct {
	in, out, aux []complex128
}

// NewPlan3R creates a real-input 3-D plan for an m×m×m grid.
func NewPlan3R(m int) *Plan3R {
	p3 := &Plan3R{m: m, k: m/2 + 1, p: NewPlan(m)}
	p3.pool.New = func() any {
		aux := p3.p.RealScratchLen()
		if s := p3.p.ScratchLen(); s > aux {
			aux = s
		}
		return &r3scratch{
			in:  make([]complex128, m),
			out: make([]complex128, m),
			aux: make([]complex128, aux),
		}
	}
	return p3
}

// Edge returns the grid edge length m.
func (p *Plan3R) Edge() int { return p.m }

// HalfLen returns the number of stored z-frequency lines, m/2 + 1.
func (p *Plan3R) HalfLen() int { return p.k }

// RealLen returns the real-grid length m³.
func (p *Plan3R) RealLen() int { return p.m * p.m * p.m }

// FreqLen returns the half-spectrum length m·m·(m/2+1).
func (p *Plan3R) FreqLen() int { return p.m * p.m * p.k }

// Forward computes the half spectrum of the real grid src (length
// RealLen) into dst (length FreqLen). src is read-only.
func (p *Plan3R) Forward(dst []complex128, src []float64) {
	if len(dst) != p.FreqLen() || len(src) != p.RealLen() {
		panic("fft: grid length does not match 3-D real plan")
	}
	m, k := p.m, p.k
	sc := p.pool.Get().(*r3scratch)
	defer p.pool.Put(sc)
	// Along z: real-to-complex, contiguous on both sides.
	for xy := 0; xy < m*m; xy++ {
		p.p.ForwardRealScratch(dst[xy*k:xy*k+k], src[xy*m:xy*m+m], sc.aux)
	}
	// Along y, then x: full complex transforms of the stored lines.
	p.complexPass(dst, sc, false)
}

// Inverse computes the real inverse transform (scaled by 1/m³) of the
// half spectrum src into dst, so that Inverse(Forward(x)) == x.
// src is used as workspace and is garbage afterwards.
func (p *Plan3R) Inverse(dst []float64, src []complex128) {
	if len(dst) != p.RealLen() || len(src) != p.FreqLen() {
		panic("fft: grid length does not match 3-D real plan")
	}
	m, k := p.m, p.k
	sc := p.pool.Get().(*r3scratch)
	defer p.pool.Put(sc)
	p.complexPass(src, sc, true)
	// Along z: complex-to-real reconstruction via conjugate symmetry.
	for xy := 0; xy < m*m; xy++ {
		p.p.InverseRealScratch(dst[xy*m:xy*m+m], src[xy*k:xy*k+k], sc.aux)
	}
}

// complexPass runs the full complex y- and x-dimension transforms over
// the k stored z-frequency lines of grid g (in place), using the
// caller's scratch set.
func (p *Plan3R) complexPass(g []complex128, sc *r3scratch, inverse bool) {
	m, k := p.m, p.k
	line := func(base, stride int) {
		for i := 0; i < m; i++ {
			sc.in[i] = g[base+i*stride]
		}
		if inverse {
			p.p.InverseScratch(sc.out, sc.in, sc.aux)
		} else {
			p.p.ForwardScratch(sc.out, sc.in, sc.aux)
		}
		for i := 0; i < m; i++ {
			g[base+i*stride] = sc.out[i]
		}
	}
	// Along y.
	for ix := 0; ix < m; ix++ {
		for iz := 0; iz < k; iz++ {
			line(ix*m*k+iz, k)
		}
	}
	// Along x.
	for iy := 0; iy < m; iy++ {
		for iz := 0; iz < k; iz++ {
			line(iy*k+iz, m*k)
		}
	}
}

// Convolve3 returns the circular convolution c[t] = Σ_s a[(t-s) mod n] b[s]
// of two cubic grids with side n, computed by direct summation. It is the
// reference implementation used to validate the Fourier-space path.
func Convolve3(a, b []complex128, n int) []complex128 {
	c := make([]complex128, n*n*n)
	idx := func(x, y, z int) int { return (x*n+y)*n + z }
	for tx := 0; tx < n; tx++ {
		for ty := 0; ty < n; ty++ {
			for tz := 0; tz < n; tz++ {
				s := complex(0, 0)
				for sx := 0; sx < n; sx++ {
					for sy := 0; sy < n; sy++ {
						for sz := 0; sz < n; sz++ {
							s += a[idx(mod(tx-sx, n), mod(ty-sy, n), mod(tz-sz, n))] * b[idx(sx, sy, sz)]
						}
					}
				}
				c[idx(tx, ty, tz)] = s
			}
		}
	}
	return c
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// Abs returns |z| (convenience re-export used by tests and the harness).
func Abs(z complex128) float64 { return cmplx.Abs(z) }

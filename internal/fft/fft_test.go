package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		s := complex(0, 0)
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover powers of two, mixed radix, primes, and awkward composites.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 17, 24, 30, 31, 36, 49, 60, 64, 100} {
		p := NewPlan(n)
		x := randomSignal(rng, n)
		got := make([]complex128, n)
		p.Forward(got, x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestInverseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 7, 12, 16, 45, 128} {
		p := NewPlan(n)
		x := randomSignal(rng, n)
		f := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(f, x)
		p.Inverse(back, f)
		if e := maxErr(back, x); e > 1e-11*float64(n) {
			t.Errorf("n=%d: roundtrip error %v", n, e)
		}
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	p := NewPlan(n)
	x := randomSignal(rng, n)
	y := randomSignal(rng, n)
	alpha := complex(1.5, -0.5)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = x[i] + alpha*y[i]
	}
	fx := make([]complex128, n)
	fy := make([]complex128, n)
	fs := make([]complex128, n)
	p.Forward(fx, x)
	p.Forward(fy, y)
	p.Forward(fs, sum)
	for i := range fs {
		if cmplx.Abs(fs[i]-(fx[i]+alpha*fy[i])) > 1e-10 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestParsevalEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 60
	p := NewPlan(n)
	x := randomSignal(rng, n)
	f := make([]complex128, n)
	p.Forward(f, x)
	et, ef := 0.0, 0.0
	for i := range x {
		et += real(x[i] * cmplx.Conj(x[i]))
		ef += real(f[i] * cmplx.Conj(f[i]))
	}
	if math.Abs(ef-float64(n)*et) > 1e-9*ef {
		t.Errorf("Parseval: freq energy %v, n*time energy %v", ef, float64(n)*et)
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	n := 30
	p := NewPlan(n)
	x := make([]complex128, n)
	x[0] = 1
	f := make([]complex128, n)
	p.Forward(f, x)
	for i, v := range f {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum[%d] = %v", i, v)
		}
	}
}

func TestConvolutionTheorem1D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 12
	p := NewPlan(n)
	a := randomSignal(rng, n)
	b := randomSignal(rng, n)
	// Direct circular convolution.
	direct := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			direct[k] += a[mod(k-j, n)] * b[j]
		}
	}
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	p.Forward(fa, a)
	p.Forward(fb, b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	viaFFT := make([]complex128, n)
	p.Inverse(viaFFT, fa)
	if e := maxErr(direct, viaFFT); e > 1e-10 {
		t.Errorf("convolution theorem error %v", e)
	}
}

func TestPlan3RoundtripAndConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 6
	p3 := NewPlan3(n, n, n)
	a := randomSignal(rng, n*n*n)
	b := randomSignal(rng, n*n*n)
	// Roundtrip.
	work := append([]complex128(nil), a...)
	p3.Forward(work)
	p3.Inverse(work)
	if e := maxErr(work, a); e > 1e-10 {
		t.Fatalf("3-D roundtrip error %v", e)
	}
	// Convolution theorem in 3-D against the direct reference.
	direct := Convolve3(a, b, n)
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	p3.Forward(fa)
	p3.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p3.Inverse(fa)
	if e := maxErr(direct, fa); e > 1e-9 {
		t.Errorf("3-D convolution theorem error %v", e)
	}
}

func TestPlan3AnisotropicRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p3 := NewPlan3(4, 6, 5)
	x := randomSignal(rng, 4*6*5)
	work := append([]complex128(nil), x...)
	p3.Forward(work)
	p3.Inverse(work)
	if e := maxErr(work, x); e > 1e-10 {
		t.Errorf("anisotropic roundtrip error %v", e)
	}
}

// smoothLengths lists every 5-smooth length <= 32 — the complete set of
// line lengths the FMM's padded convolution grids can produce for
// practical surface degrees.
func smoothLengths() []int {
	var ns []int
	for n := 1; n <= 32; n++ {
		if NextSmooth(n) == n {
			ns = append(ns, n)
		}
	}
	return ns
}

// TestForwardAllSmoothLengths is the property test of the full complex
// path across every 5-smooth length the FMM can request: the mixed-radix
// recursion (all hardcoded radix-2/3/4/5 butterflies) must match the
// O(n²) reference transform.
func TestForwardAllSmoothLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range smoothLengths() {
		p := NewPlan(n)
		x := randomSignal(rng, n)
		got := make([]complex128, n)
		p.Forward(got, x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-12*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
		back := make([]complex128, n)
		p.Inverse(back, got)
		if e := maxErr(back, x); e > 1e-12*float64(n) {
			t.Errorf("n=%d: roundtrip error %v", n, e)
		}
	}
}

// TestForwardRealMatchesComplex validates the r2c path against the full
// complex transform of the widened input for every 5-smooth length <= 32
// (both the even-length packed path and the odd-length fallback), plus a
// sample of non-smooth lengths for generality.
func TestForwardRealMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lengths := append(smoothLengths(), 7, 11, 14, 21, 33, 35)
	for _, n := range lengths {
		p := NewPlan(n)
		x := make([]float64, n)
		wide := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			wide[i] = complex(x[i], 0)
		}
		want := make([]complex128, n)
		p.Forward(want, wide)
		got := make([]complex128, p.HalfLen())
		p.ForwardReal(got, x)
		if e := maxErr(got, want[:len(got)]); e > 1e-12*float64(n) {
			t.Errorf("n=%d: r2c error %v", n, e)
		}
		// And the independent coefficients really determine the rest.
		for j := p.HalfLen(); j < n; j++ {
			c := got[n-j]
			if cmplx.Abs(want[j]-complex(real(c), -imag(c))) > 1e-12*float64(n) {
				t.Errorf("n=%d: conjugate symmetry broken at %d", n, j)
			}
		}
		// c2r inverse closes the roundtrip.
		back := make([]float64, n)
		p.InverseReal(back, got)
		for j := range back {
			if math.Abs(back[j]-x[j]) > 1e-12*float64(n) {
				t.Errorf("n=%d: real roundtrip error %v at %d", n, back[j]-x[j], j)
			}
		}
	}
}

// TestRealConvolutionAllSmoothLengths: the half spectrum must support
// the convolution theorem — the product of two r2c spectra
// inverse-transforms to the circular convolution of the real inputs.
func TestRealConvolutionAllSmoothLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range smoothLengths() {
		p := NewPlan(n)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		direct := make([]float64, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				direct[k] += a[mod(k-j, n)] * b[j]
			}
		}
		fa := make([]complex128, p.HalfLen())
		fb := make([]complex128, p.HalfLen())
		p.ForwardReal(fa, a)
		p.ForwardReal(fb, b)
		for i := range fa {
			fa[i] *= fb[i]
		}
		got := make([]float64, n)
		p.InverseReal(got, fa)
		for i := range got {
			if math.Abs(got[i]-direct[i]) > 1e-10*float64(n) {
				t.Errorf("n=%d: real convolution error %v at %d", n, got[i]-direct[i], i)
			}
		}
	}
}

// TestPlan3RMatchesConvolve3 validates the 3-D half-spectrum transform
// against the direct convolution reference on real inputs, covering an
// even and an odd grid edge.
func TestPlan3RMatchesConvolve3(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, m := range []int{4, 5, 6, 9} {
		p := NewPlan3R(m)
		n3 := m * m * m
		a := make([]float64, n3)
		b := make([]float64, n3)
		ca := make([]complex128, n3)
		cb := make([]complex128, n3)
		for i := 0; i < n3; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			ca[i] = complex(a[i], 0)
			cb[i] = complex(b[i], 0)
		}
		// Roundtrip.
		fa := make([]complex128, p.FreqLen())
		p.Forward(fa, a)
		back := make([]float64, n3)
		work := append([]complex128(nil), fa...)
		p.Inverse(back, work)
		for i := range back {
			if math.Abs(back[i]-a[i]) > 1e-11 {
				t.Fatalf("m=%d: 3-D real roundtrip error %v at %d", m, back[i]-a[i], i)
			}
		}
		// Convolution theorem against the direct reference.
		fb := make([]complex128, p.FreqLen())
		p.Forward(fb, b)
		for i := range fa {
			fa[i] *= fb[i]
		}
		got := make([]float64, n3)
		p.Inverse(got, fa)
		want := Convolve3(ca, cb, m)
		for i := range got {
			if math.Abs(got[i]-real(want[i])) > 1e-9 {
				t.Errorf("m=%d: 3-D real convolution error %v at %d", m, got[i]-real(want[i]), i)
			}
		}
	}
}

// TestPlan3RConcurrency: one Plan3R must serve concurrent transforms
// (the FMM fans box transforms out over a worker pool).
func TestPlan3RConcurrency(t *testing.T) {
	p := NewPlan3R(6)
	rng := rand.New(rand.NewSource(13))
	src := make([]float64, p.RealLen())
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	want := make([]complex128, p.FreqLen())
	p.Forward(want, src)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			got := make([]complex128, p.FreqLen())
			ok := true
			for i := 0; i < 50; i++ {
				p.Forward(got, src)
				if maxErr(got, want) != 0 {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent real transforms disagree")
		}
	}
}

// TestScratchLen pins the scratch sizing: zero for 5-smooth lengths
// (hardcoded butterflies need no gather scratch), the largest prime
// factor >= 7 otherwise.
func TestScratchLen(t *testing.T) {
	for _, n := range smoothLengths() {
		if s := NewPlan(n).ScratchLen(); s != 0 {
			t.Errorf("ScratchLen(%d) = %d, want 0", n, s)
		}
	}
	cases := map[int]int{7: 7, 14: 7, 49: 7, 22: 11, 77: 11, 13: 13}
	for n, want := range cases {
		if s := NewPlan(n).ScratchLen(); s != want {
			t.Errorf("ScratchLen(%d) = %d, want %d", n, s, want)
		}
	}
}

func TestNextSmooth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 7: 8, 11: 12, 13: 15, 16: 16, 17: 18, 31: 32, 121: 125}
	for in, want := range cases {
		if got := NextSmooth(in); got != want {
			t.Errorf("NextSmooth(%d) = %d, want %d", in, got, want)
		}
	}
	if NextSmooth(0) != 1 {
		t.Error("NextSmooth(0) must be 1")
	}
}

func TestPlanValidation(t *testing.T) {
	p := NewPlan(8)
	x := make([]complex128, 8)
	for _, f := range []func(){
		func() { p.Forward(make([]complex128, 7), x) },
		func() { p.Forward(x, x) },
		func() { NewPlan(0) },
		func() { NewPlan3(2, 2, 2).Forward(make([]complex128, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPlanConcurrencySafety(t *testing.T) {
	p := NewPlan(36)
	rng := rand.New(rand.NewSource(8))
	x := randomSignal(rng, 36)
	want := make([]complex128, 36)
	p.Forward(want, x)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			got := make([]complex128, 36)
			for i := 0; i < 50; i++ {
				p.Forward(got, x)
			}
			done <- maxErr(got, want) == 0
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent transforms disagree")
		}
	}
}

func BenchmarkForward12(b *testing.B)   { benchForward(b, 12) }
func BenchmarkForward64(b *testing.B)   { benchForward(b, 64) }
func BenchmarkForward3D12(b *testing.B) { benchForward3D(b, 12) }

func benchForward(b *testing.B, n int) {
	p := NewPlan(n)
	x := randomSignal(rand.New(rand.NewSource(1)), n)
	dst := make([]complex128, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}

func benchForward3D(b *testing.B, n int) {
	p := NewPlan3(n, n, n)
	x := randomSignal(rand.New(rand.NewSource(1)), n*n*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

// oddSmooth are the odd 5-smooth lengths the FMM's M2L grids can land
// on (M = 2p on even degrees, but odd grid edges appear through the
// NextSmooth padding policy and the degree-8 M=15 case). The even path
// takes the packed half-length transform; these lengths exercise the
// odd fallback, which PR 4's suite covered only incidentally.
func oddSmooth() []int { return []int{15, 25, 27} }

// TestRealFFTOddLengthsProperty: property tests of the odd-length
// ForwardReal/InverseReal fallback — round trip, agreement with the
// complex path, linearity, and the inverse of an arbitrary
// conjugate-symmetric half spectrum matching the full complex inverse.
func TestRealFFTOddLengthsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range oddSmooth() {
		p := NewPlan(n)
		if p.HalfLen() != n/2+1 {
			t.Fatalf("n=%d: HalfLen = %d, want %d", n, p.HalfLen(), n/2+1)
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		// Round trip.
		fx := make([]complex128, p.HalfLen())
		p.ForwardReal(fx, x)
		back := make([]float64, n)
		p.InverseReal(back, fx)
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-12*float64(n) {
				t.Errorf("n=%d: odd real roundtrip error %v at %d", n, back[i]-x[i], i)
			}
		}
		// Match the complex path coefficient for coefficient.
		wide := make([]complex128, n)
		for i := range x {
			wide[i] = complex(x[i], 0)
		}
		want := make([]complex128, n)
		p.Forward(want, wide)
		if e := maxErr(fx, want[:len(fx)]); e > 1e-12*float64(n) {
			t.Errorf("n=%d: odd r2c differs from complex path by %v", n, e)
		}
		// Linearity: FR(2x + 3y) == 2 FR(x) + 3 FR(y).
		fy := make([]complex128, p.HalfLen())
		p.ForwardReal(fy, y)
		mix := make([]float64, n)
		for i := range mix {
			mix[i] = 2*x[i] + 3*y[i]
		}
		fmix := make([]complex128, p.HalfLen())
		p.ForwardReal(fmix, mix)
		for i := range fmix {
			if cmplx.Abs(fmix[i]-(2*fx[i]+3*fy[i])) > 1e-11*float64(n) {
				t.Errorf("n=%d: odd r2c not linear at %d", n, i)
			}
		}
		// An arbitrary conjugate-symmetric half spectrum (bin 0 real —
		// it is its own conjugate partner at odd n) must inverse to the
		// real part of the symmetrized full complex inverse.
		spec := make([]complex128, p.HalfLen())
		spec[0] = complex(rng.NormFloat64(), 0)
		for i := 1; i < len(spec); i++ {
			spec[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		full := make([]complex128, n)
		copy(full, spec)
		for j := len(spec); j < n; j++ {
			v := spec[n-j]
			full[j] = complex(real(v), -imag(v))
		}
		ref := make([]complex128, n)
		p.Inverse(ref, full)
		got := make([]float64, n)
		p.InverseReal(got, spec)
		for i := range got {
			if math.Abs(got[i]-real(ref[i])) > 1e-12*float64(n) {
				t.Errorf("n=%d: odd c2r differs from complex inverse at %d", n, i)
			}
		}
	}
}

// TestPlan3ROddLengths: the cubic half-spectrum transform on odd grid
// edges — round trip, stored lines matching the full complex Plan3, and
// the convolution theorem against the complex path (the direct O(m^6)
// reference is out of reach at these sizes).
func TestPlan3ROddLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	lengths := oddSmooth()
	if testing.Short() {
		lengths = lengths[:1]
	}
	for _, m := range lengths {
		p := NewPlan3R(m)
		pc := NewPlan3(m, m, m)
		n3 := m * m * m
		k := p.HalfLen()
		a := make([]float64, n3)
		b := make([]float64, n3)
		ca := make([]complex128, n3)
		cb := make([]complex128, n3)
		for i := 0; i < n3; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			ca[i] = complex(a[i], 0)
			cb[i] = complex(b[i], 0)
		}
		// Forward must match the stored lines of the complex transform.
		fa := make([]complex128, p.FreqLen())
		p.Forward(fa, a)
		pc.Forward(ca)
		for xy := 0; xy < m*m; xy++ {
			for iz := 0; iz < k; iz++ {
				if cmplx.Abs(fa[xy*k+iz]-ca[xy*m+iz]) > 1e-11*float64(m) {
					t.Fatalf("m=%d: half spectrum differs from complex grid at line %d bin %d", m, xy, iz)
				}
			}
		}
		// Round trip.
		back := make([]float64, n3)
		work := append([]complex128(nil), fa...)
		p.Inverse(back, work)
		for i := range back {
			if math.Abs(back[i]-a[i]) > 1e-10 {
				t.Fatalf("m=%d: odd 3-D real roundtrip error %v at %d", m, back[i]-a[i], i)
			}
		}
		// Convolution theorem vs the complex path.
		fb := make([]complex128, p.FreqLen())
		p.Forward(fb, b)
		for i := range fa {
			fa[i] *= fb[i]
		}
		got := make([]float64, n3)
		p.Inverse(got, fa)
		pc.Forward(cb)
		for i := range ca {
			ca[i] *= cb[i]
		}
		pc.Inverse(ca)
		for i := range got {
			if math.Abs(got[i]-real(ca[i])) > 1e-8 {
				t.Errorf("m=%d: odd real convolution differs from complex path by %v at %d", m, got[i]-real(ca[i]), i)
			}
		}
	}
}

// Package load turns `go list` package patterns into parsed,
// type-checked packages for the kifmm-lint analyzers — a small,
// offline-capable stand-in for golang.org/x/tools/go/packages.
//
// It shells out to `go list -deps -export -json`, which compiles the
// matched packages and their dependencies into the build cache and
// reports an export-data file per dependency. Target packages (the
// ones the patterns matched) are then re-parsed from source with
// comments and type-checked with go/types; every import — stdlib or
// in-module — resolves through the gc export data, so no network, no
// GOPATH and no second source type-check of dependencies is needed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked target package, carrying everything an
// analysis.Pass needs.
type Package struct {
	// Path is the package's full import path (e.g. "repro/internal/fmm").
	Path string
	// Dir is the directory holding the package's source files.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo holds Uses/Defs/Types/Selections for Files.
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// Load resolves patterns (e.g. "./...") relative to dir into
// type-checked packages. Packages that are only dependencies of the
// matched set are loaded from export data, not returned.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listEntry
	for _, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s: cgo packages are not supported", t.ImportPath)
		}
		pkg, err := Check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the entry
// stream. Stderr is surfaced on failure — it carries the compiler
// diagnostics when a matched package does not build.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// ExportData maps the listed import paths (and their transitive
// dependencies) to gc export-data files, compiling them into the build
// cache if needed. analysistest uses it to resolve fixture imports.
func ExportData(dir string, importPaths ...string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	entries, err := goList(dir, importPaths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through gc export-data files (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check parses goFiles under dir (with comments) and type-checks them
// as package path, resolving imports through imp.
func Check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

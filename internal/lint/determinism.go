package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// deterministicPkgs are the engine packages whose results must be
// bitwise identical across runs, lane widths and rank counts. Anything
// order- or clock-dependent inside them is a correctness hazard, not a
// style issue.
var deterministicPkgs = []string{
	"internal/fmm",
	"internal/exec",
	"internal/parfmm",
	"internal/translate",
	"internal/fft",
}

// Determinism flags constructs that break bitwise reproducibility in
// the deterministic engine packages:
//
//   - ranging over a map while accumulating into floats or complexes,
//     or appending to a slice (map iteration order is randomized, and
//     float addition is not associative — the same inputs produce
//     different bits on different runs);
//   - time.Now (wall-clock reads; timing-only uses feeding Stats are
//     annotated, keeping each exception visible);
//   - importing math/rand or math/rand/v2 (randomness belongs to
//     callers and test harnesses, not the engine).
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag map-iteration-order-dependent accumulation, wall-clock reads and randomness inside the bitwise-deterministic engine packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	if !pathMatches(pass.Pkg.Path(), deterministicPkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && (p == "math/rand" || p == "math/rand/v2") {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package %s: randomness breaks bitwise reproducibility; inject a seeded source from outside the engine", p, pass.Pkg.Name())
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.TypesInfo, n, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now in deterministic package %s: wall-clock reads are nondeterministic; annotate timing-only observability uses with //lint:allow determinism <reason>", pass.Pkg.Name())
				}
			case *ast.RangeStmt:
				if isMapRange(pass.TypesInfo, n) {
					reportMapRangeBody(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// reportMapRangeBody flags order-sensitive operations in the body of a
// map-range loop. Nested map ranges are skipped — they report their own
// bodies — but nested slice loops are walked, since their work still
// runs once per (randomly ordered) map element.
func reportMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(pass.TypesInfo, n) {
				return false
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloatish(pass.TypesInfo.TypeOf(lhs)) {
						pass.Reportf(n.Pos(), "floating-point accumulation inside a map-range loop: iteration order is randomized and float addition is not associative; iterate sorted keys instead")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					pass.Reportf(n.Pos(), "append inside a map-range loop produces a randomly ordered slice: iterate sorted keys, or sort the result before it is consumed")
				}
			}
		}
		return true
	})
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

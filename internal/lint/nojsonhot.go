package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// jsonBanPkgs are the compute hot-path packages where encoding/json
// must never appear at all: they run per box, per point, per spectrum
// line — any JSON there is a smuggled slow path.
var jsonBanPkgs = []string{
	"internal/fft",
	"internal/kernels",
	"internal/translate",
	"internal/fmm",
	"internal/exec",
	"internal/wire",
}

// bulkWirePkgs get a scoped rule: JSON is fine for control payloads
// (hello, heartbeats, job headers, response meta) but banned in the
// bulk-frame path — any function whose signature traffics in raw
// float64 arrays moves coordinates, densities or potentials and must
// use the internal/wire little-endian primitives. The list covers
// every layer bulk arrays cross: the cluster TCP frames, the HTTP
// service's negotiated bodies, and the client mirroring them.
var bulkWirePkgs = []string{
	"internal/cluster",
	"internal/service",
	"repro/client",
}

// NoJSONHot bans encoding/json from the compute hot-path packages
// outright, bans it from bulk-wire-layer functions that handle raw
// float64 arrays, and flags fmt.Sprintf inside loops in any of
// those packages (per-element formatting allocates on paths that run
// per point).
var NoJSONHot = &analysis.Analyzer{
	Name: "nojsonhot",
	Doc:  "no encoding/json on compute or bulk-wire hot paths, and no per-element fmt.Sprintf in hot-path loops",
	Run:  runNoJSONHot,
}

func runNoJSONHot(pass *analysis.Pass) (interface{}, error) {
	full := pathMatches(pass.Pkg.Path(), jsonBanPkgs...)
	bulk := pathMatches(pass.Pkg.Path(), bulkWirePkgs...)
	if !full && !bulk {
		return nil, nil
	}
	for _, file := range pass.Files {
		if full {
			for _, imp := range file.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "encoding/json" {
					pass.Reportf(imp.Pos(), "encoding/json import in hot-path package %s: serialization belongs in the service/control layers", pass.Pkg.Name())
				}
			}
		}
		if bulk {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !handlesBulkFloats(pass.TypesInfo, fd.Type) {
					continue
				}
				if pos, ok := usesPackage(pass.TypesInfo, fd.Body, "encoding/json"); ok {
					pass.Reportf(pos, "encoding/json on the bulk-frame path (%s handles raw float64 arrays): bulk data crosses the wire as raw little-endian words, JSON is control-plane only", fd.Name.Name)
				}
			}
		}
		reportSprintfInLoops(pass, file)
	}
	return nil, nil
}

// handlesBulkFloats reports whether any parameter or result is (a
// pointer to) []float64 or [][]float64 — the signature shape of the
// bulk coordinate/density/potential path. Named struct fields are
// deliberately not traversed: a control-plane header that contains a
// slice field is not itself the bulk path.
func handlesBulkFloats(info *types.Info, ft *ast.FuncType) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			if isBulkFloatType(info.TypeOf(f.Type)) {
				return true
			}
		}
		return false
	}
	return check(ft.Params) || check(ft.Results)
}

func isBulkFloatType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			elem := u.Elem()
			if b, ok := elem.Underlying().(*types.Basic); ok && b.Kind() == types.Float64 {
				return true
			}
			if inner, ok := elem.(*types.Slice); ok {
				if b, ok := inner.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Float64 {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
}

// reportSprintfInLoops flags fmt.Sprintf calls lexically inside any
// for/range loop in the file. Positions are deduplicated so nested
// loops report once.
func reportSprintfInLoops(pass *analysis.Pass, file *ast.File) {
	seen := make(map[ast.Node]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || seen[call] {
				return true
			}
			if isPkgFunc(pass.TypesInfo, call, "fmt", "Sprintf") {
				seen[call] = true
				pass.Reportf(call.Pos(), "fmt.Sprintf inside a loop in hot-path package %s: per-element formatting allocates; hoist it out of the loop or format lazily", pass.Pkg.Name())
			}
			return true
		})
		return true
	})
}

// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, vendored as an interface so the
// kifmm-lint analyzers are written exactly as upstream analyzers are.
//
// The build environment this repository grows in has no module proxy
// access and an empty module cache, so golang.org/x/tools cannot be a
// real dependency yet. Rather than inventing a bespoke lint API, this
// package mirrors the upstream names and shapes (Analyzer, Pass,
// Diagnostic, Pass.Reportf) for the subset the analyzers use; when the
// dependency becomes vendorable, switching is a one-line import change
// per analyzer plus deleting this package. Facts, Requires and
// ResultOf are intentionally absent — the kifmm analyzers are all
// single-pass and dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a name (used in
// findings and in //lint:allow suppression comments), documentation,
// and a Run function invoked once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer. It must be a valid Go identifier;
	// it appears in finding output and suppression comments.
	Name string

	// Doc is the analyzer's documentation: a one-line summary of the
	// invariant it enforces, optionally followed by detail paragraphs.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report / pass.Reportf. The result value is unused in this
	// subset (upstream threads it to dependent analyzers) but kept in
	// the signature for drop-in compatibility.
	Run func(*Pass) (interface{}, error)
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps token positions to file locations for all Files.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File

	// Pkg is the package's type information.
	Pkg *types.Package

	// TypesInfo holds type facts (Uses, Defs, Types, Selections) for
	// the package's syntax.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver (multichecker or
	// analysistest) installs it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. Category is
// an optional sub-classification within an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Category string
	Message  string
}

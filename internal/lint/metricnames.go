package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// MetricNameRE is the shape every registered metric family name must
// have: kifmm_-prefixed snake_case, lowercase alphanumerics only, no
// leading/trailing/double underscores. It statically mirrors the
// runtime rule (obs rejects malformed names when registering, and the
// service README-catalog test cross-checks names against the docs);
// the analyzer moves the failure from test time to lint time.
var MetricNameRE = regexp.MustCompile(`^kifmm(_[a-z0-9]+)+$`)

// registryMethods are the obs.Registry registration entry points and
// the index of their help-text argument (name is always argument 0).
var registryMethods = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"CounterFunc":  true,
	"Gauge":        true,
	"GaugeVec":     true,
	"GaugeFunc":    true,
	"Histogram":    true,
	"HistogramVec": true,
}

// MetricNames checks every obs.Registry registration call site: the
// family name must be a compile-time string constant matching
// MetricNameRE, and the help text a non-empty compile-time string.
// Constant names keep the README catalog greppable and make collisions
// and typos visible in review rather than at process start.
var MetricNames = &analysis.Analyzer{
	Name: "metricnames",
	Doc:  "obs metric registrations must use constant snake_case kifmm_* names with non-empty help text",
	Run:  runMetricNames,
}

func runMetricNames(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegistryRegistration(pass.TypesInfo, call) || len(call.Args) < 2 {
				return true
			}
			name, ok := constString(pass.TypesInfo, call.Args[0])
			switch {
			case !ok:
				pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time string constant so the catalog stays greppable")
			case !MetricNameRE.MatchString(name):
				pass.Reportf(call.Args[0].Pos(), "metric name %q: must be snake_case matching %s", name, MetricNameRE)
			}
			help, ok := constString(pass.TypesInfo, call.Args[1])
			switch {
			case !ok:
				pass.Reportf(call.Args[1].Pos(), "metric help text must be a compile-time string constant")
			case help == "":
				pass.Reportf(call.Args[1].Pos(), "metric help text must be non-empty: it renders as the # HELP line and the README catalog entry")
			}
			return true
		})
	}
	return nil, nil
}

// isRegistryRegistration reports whether the call is one of the
// registration methods on obs.Registry (matched by receiver type name
// and package path suffix, so analysistest fixtures with a fake obs
// package type-match too).
func isRegistryRegistration(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || !registryMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && pathMatches(obj.Pkg().Path(), "internal/obs")
}

// constString evaluates an expression to a compile-time string
// constant (literal, const reference, or concatenation of those).
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

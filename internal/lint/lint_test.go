package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/load"
)

// Each fixture package pairs positive cases (// want comments) with
// negative ones (clean code the analyzer must stay silent on); the
// runner fails on unexpected diagnostics in both directions.

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Determinism, "repro/internal/fmm")
}

func TestCtxFirstFixture(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxFirst, "repro/internal/engine")
}

// TestCtxFirstSkipsCmd: main packages under cmd/ are exempt — the
// fixture uses context.Background and launches goroutines, and the
// analyzer must report nothing.
func TestCtxFirstSkipsCmd(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxFirst, "repro/cmd/enginetool")
}

// TestServiceFixture: the service fixture carries positive cases for
// two rules at once — errtaxonomy on escaping errors and nojsonhot on
// the bulk HTTP wire path — so both analyzers run pooled, the way the
// real package is linted.
func TestServiceFixture(t *testing.T) {
	analysistest.RunAll(t, "testdata",
		[]*analysis.Analyzer{lint.ErrTaxonomy, lint.NoJSONHot},
		"repro/internal/service")
}

func TestNoJSONHotComputeFixture(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoJSONHot, "repro/internal/fft")
}

func TestNoJSONHotClusterFixture(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoJSONHot, "repro/internal/cluster")
}

// TestNoJSONHotWireFixture: internal/wire is a full-ban package — even
// an import of encoding/json is flagged.
func TestNoJSONHotWireFixture(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoJSONHot, "repro/internal/wire")
}

// TestNoJSONHotClientFixture: the client mirrors the server's bulk
// rule — frame codecs must stay off encoding/json.
func TestNoJSONHotClientFixture(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoJSONHot, "repro/client")
}

func TestMetricNamesFixture(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MetricNames, "repro/internal/metricsdemo")
}

// TestScopedAnalyzersSilentElsewhere: the package-scoped analyzers
// must not fire outside their package lists — repro/internal/engine is
// neither a deterministic, boundary, nor hot-path package, so only
// ctxfirst has findings there.
func TestScopedAnalyzersSilentElsewhere(t *testing.T) {
	engine := analysistest.Load(t, "testdata", "repro/internal/engine")
	findings, err := lint.Run(
		[]*load.Package{engine},
		[]*analysis.Analyzer{lint.Determinism, lint.ErrTaxonomy, lint.NoJSONHot, lint.MetricNames},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("scoped analyzer fired out of scope: %s", f)
	}
}

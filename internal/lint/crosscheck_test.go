package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// TestMetricNameRE pins the name grammar with a truth table, so a
// regexp edit that loosens or tightens it shows up here first.
func TestMetricNameRE(t *testing.T) {
	cases := map[string]bool{
		"kifmm_requests_total":        true,
		"kifmm_eval_seconds":          true,
		"kifmm_m2l_cache_hits_total":  true,
		"kifmm":                       false,
		"kifmm_":                      false,
		"kifmm__double":               false,
		"kifmm_Upper":                 false,
		"requests_total":              false,
		"kifmm_trailing_":             false,
		"prefix_kifmm_requests_total": false,
	}
	for name, want := range cases {
		if got := lint.MetricNameRE.MatchString(name); got != want {
			t.Errorf("MetricNameRE.MatchString(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestLiveServiceMetricNames type-checks the real internal/service
// package — the only place obs metric families are registered — and
// asserts the metricnames analyzer finds nothing: every live family
// name is a constant snake_case kifmm_* literal with help text. This is
// the compile-time twin of the service README-catalog test.
func TestLiveServiceMetricNames(t *testing.T) {
	if testing.Short() {
		t.Skip("shells go list over the real module; skipped in -short")
	}
	pkgs, err := load.Load("../..", "./internal/service")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{lint.MetricNames})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("live metric registration breaks the naming invariant: %s", f)
	}
}

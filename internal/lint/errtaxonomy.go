package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// boundaryPkgs are the packages whose exported surface is the API
// boundary: every error they let escape must carry an errs code so the
// service can map it to an HTTP status and the client can reconstruct
// the identical typed error on the far side of the wire.
var boundaryPkgs = []string{
	"internal/service",
	"internal/cluster",
	"client",
}

// ErrTaxonomy flags fmt.Errorf and errors.New calls returned directly
// from exported functions in the boundary packages. An untyped error
// there surfaces as a generic 500 instead of its real class (400, 404,
// 413, 499, 503, 504) and breaks errors.Is branching on the client.
// Wrap with errs.Newf/errs.Wrap, or errs.Typed when the cause may
// already carry a code.
var ErrTaxonomy = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "errors escaping exported functions of the service/cluster/client boundary must be errs-typed",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(pass *analysis.Pass) (interface{}, error) {
	if !pathMatches(pass.Pkg.Path(), boundaryPkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					call, ok := res.(*ast.CallExpr)
					if !ok {
						continue
					}
					switch {
					case isPkgFunc(pass.TypesInfo, call, "fmt", "Errorf"):
						pass.Reportf(call.Pos(), "untyped fmt.Errorf escapes exported %s: errors crossing the API boundary must carry an errs code (use errs.Newf, or errs.Wrap/errs.Typed around a cause)", fd.Name.Name)
					case isPkgFunc(pass.TypesInfo, call, "errors", "New"):
						pass.Reportf(call.Pos(), "untyped errors.New escapes exported %s: errors crossing the API boundary must carry an errs code (use errs.New with a Code)", fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

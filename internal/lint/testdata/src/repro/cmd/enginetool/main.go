// Command enginetool is the ctxfirst negative fixture: main packages
// under cmd/ own the process lifetime, so context.Background is legal
// and goroutine launches need no ctx-first signature. The analyzer must
// stay silent on this package.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
	go run()
}

func run() {}

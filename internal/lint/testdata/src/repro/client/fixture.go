// Package client is the nojsonhot bulk-wire fixture for the client
// side of the negotiated HTTP encoding: the same rule as the server —
// JSON for control payloads, raw little-endian words for bulk arrays.
package client

import "encoding/json"

// planHeader is the control-plane part of a frame body.
type planHeader struct {
	Kernel string `json:"kernel"`
}

// encodeHeader is control-plane JSON: not flagged.
func encodeHeader(h planHeader) ([]byte, error) {
	return json.Marshal(h)
}

// encodeDensities ships a bulk density vector as JSON text.
func encodeDensities(den []float64) ([]byte, error) {
	return json.Marshal(den) // want `encoding/json on the bulk-frame path \(encodeDensities handles raw float64 arrays\)`
}

// Package errs is a minimal fixture stand-in for the real error
// taxonomy, so boundary fixtures type-check from source under
// testdata/src without importing the module's package. It exists to
// exercise the analysistest loader's recursive source resolution of
// fixture-local dependencies.
package errs

import "fmt"

// Code classifies an error for HTTP mapping and wire round-trips.
type Code string

// CodeInvalidInput marks caller mistakes (maps to 400).
const CodeInvalidInput Code = "invalid_input"

// Error is a coded error.
type Error struct {
	Code Code
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// New builds a coded error from a fixed message.
func New(code Code, msg string) error { return &Error{Code: code, Msg: msg} }

// Newf builds a coded error from a format string.
func Newf(code Code, format string, args ...interface{}) error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

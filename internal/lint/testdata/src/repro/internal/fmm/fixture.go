// Package fmm is the determinism-analyzer fixture: its import path
// ends in internal/fmm, so the bitwise-reproducibility rules apply to
// it exactly as they do to the real engine package.
package fmm

import (
	"math/rand" // want `import of math/rand in deterministic package fmm`
	"sort"
	"time"
)

// SumPotentials accumulates a float while ranging over a map:
// iteration order is randomized, so the sum's bits vary run to run.
func SumPotentials(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation inside a map-range loop`
	}
	return s
}

// Keys collects map keys in iteration order, producing a randomly
// ordered slice.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `append inside a map-range loop`
	}
	return ks
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package fmm`
}

// Jitter uses the flagged math/rand import; only the import line is
// reported, not each call.
func Jitter() float64 { return rand.Float64() }

// SumSorted is the compliant accumulation pattern: the key-collecting
// append is still flagged (real code annotates or pre-sizes it), but
// the sorted slice range below must not be.
func SumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `append inside a map-range loop`
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// CountEntries accumulates an int inside a map range: integer addition
// is exact and order-independent, so it is not flagged.
func CountEntries(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Package engine is the ctxfirst fixture: a library package, so both
// the context.Background ban and the ctx-first rule for exported
// goroutine-launching functions apply.
package engine

import (
	"context"
	"sync"
)

// Detached builds its own root context instead of threading the
// caller's.
func Detached() context.Context {
	return context.Background() // want `context.Background\(\) in library code`
}

// Launch starts workers without giving the caller a way to stop them.
func Launch(n int) { // want `exported Launch launches goroutines but does not take a context.Context first argument`
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go wg.Done()
	}
	wg.Wait()
}

// Hidden launches inside a closure it defines; that is still work this
// function wires up.
func Hidden(n int) { // want `exported Hidden launches goroutines but does not take a context.Context first argument`
	spawn := func() {
		go func() {}()
	}
	for i := 0; i < n; i++ {
		spawn()
	}
}

// LaunchCtx is the compliant shape: ctx first, so the caller can bound
// the concurrent work.
func LaunchCtx(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// launch is unexported: internal helpers may assume their exported
// caller already threads a context.
func launch() {
	go func() {}()
}

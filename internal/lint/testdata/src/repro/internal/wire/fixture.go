// Package wire is the nojsonhot full-ban fixture: the binary framing
// layer exists to keep serialization cost off the bulk path, so
// encoding/json must not appear in it at all — headers that need JSON
// ride through as opaque blobs for the layers above to decode.
package wire

import "encoding/json" // want `encoding/json import in hot-path package wire`

func headerJSON(v any) ([]byte, error) {
	return json.Marshal(v)
}

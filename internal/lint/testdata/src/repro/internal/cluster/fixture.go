// Package cluster is the nojsonhot fixture for the scoped wire rule:
// JSON is legal on the control plane (headers, handshakes) but banned
// in any function whose signature traffics in raw float64 arrays — the
// bulk coordinate/density/potential path.
package cluster

import "encoding/json"

// jobHeader is a control-plane payload; a slice field inside a named
// struct does not make its codec part of the bulk path.
type jobHeader struct {
	ID    string `json:"id"`
	Spans []int  `json:"spans"`
}

// encodeHeader is control-plane JSON: no bulk arrays in the signature,
// so it is not flagged.
func encodeHeader(h jobHeader) ([]byte, error) {
	return json.Marshal(h)
}

// ScatterFrame moves densities — bulk data — through JSON.
func ScatterFrame(den []float64) ([]byte, error) {
	return json.Marshal(den) // want `encoding/json on the bulk-frame path \(ScatterFrame handles raw float64 arrays\)`
}

// gatherInto is unexported but still on the bulk path: the rule follows
// the data, not the export set.
func gatherInto(dst *[]float64, raw []byte) error {
	return json.Unmarshal(raw, dst) // want `encoding/json on the bulk-frame path \(gatherInto handles raw float64 arrays\)`
}

// Package parfmm is the //lint:allow fixture: it pairs annotated and
// unannotated findings with stale, malformed and unknown-analyzer
// annotations so the suppression tests can assert each behavior of
// lint.Run. The import path ends in internal/parfmm, so the
// determinism rules apply.
package parfmm

import "time"

// StampAllowed is suppressed by a same-line annotation.
func StampAllowed() int64 {
	return time.Now().UnixNano() //lint:allow determinism fixture exercises same-line suppression
}

// StampBlockAllowed is suppressed by an annotation in the comment block
// directly above the finding.
func StampBlockAllowed() int64 {
	//lint:allow determinism fixture exercises block-form suppression
	return time.Now().UnixNano()
}

// StampBare has no annotation, so its finding must be reported.
func StampBare() int64 {
	return time.Now().UnixNano() // marker: reported finding
}

// SumSlice carries an annotation that suppresses nothing: slice ranges
// are deterministic, so the allow is stale and must be flagged.
func SumSlice(xs []float64) float64 {
	var s float64
	//lint:allow determinism marker: stale annotation
	for _, v := range xs {
		s += v
	}
	return s
}

// Malformed sits under an annotation with no analyzer or reason.
//
//lint:allow
func Malformed() {}

// Unknown sits under an annotation naming an analyzer that does not
// exist.
//
//lint:allow nosuchanalyzer marker: unknown analyzer
func Unknown() {}

// Package obs is a minimal fixture stand-in for the real metrics
// registry. The metricnames analyzer matches registrations by method
// name plus the Registry type's import-path suffix, so calls against
// this fake exercise exactly the matching path used on the real
// package.
package obs

// Registry registers metric families.
type Registry struct{}

// Observe is a placeholder handle for a registered family.
type Observe func(float64)

func (r *Registry) Counter(name, help string) Observe                       { return nil }
func (r *Registry) CounterVec(name, help string, labels ...string) Observe  { return nil }
func (r *Registry) Gauge(name, help string) Observe                         { return nil }
func (r *Registry) GaugeFunc(name, help string, f func() float64)           {}
func (r *Registry) Histogram(name, help string, buckets ...float64) Observe { return nil }

// Package fft is the nojsonhot fixture for the full-ban compute
// packages: any encoding/json import is flagged, and so is per-element
// fmt.Sprintf inside loops.
package fft

import (
	"encoding/json" // want `encoding/json import in hot-path package fft`
	"fmt"
)

// Describe formats per spectrum line: the Sprintf allocates once per
// element.
func Describe(spectrum []complex128) string {
	var out string
	for i, v := range spectrum {
		out += fmt.Sprintf("%d:%v;", i, v) // want `fmt.Sprintf inside a loop in hot-path package fft`
	}
	return out
}

// Marshal justifies the flagged import; the call site itself is not
// re-reported.
func Marshal(plan interface{}) ([]byte, error) {
	return json.Marshal(plan)
}

// Label formats once, outside any loop: not flagged.
func Label(n int) string {
	return fmt.Sprintf("fft-%d", n)
}

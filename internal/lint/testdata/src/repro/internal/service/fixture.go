// Package service is the errtaxonomy fixture: its import path ends in
// internal/service, so every error escaping an exported function must
// carry an errs code.
package service

import (
	"errors"
	"fmt"

	"repro/internal/errs"
)

// Exported returns naked stdlib errors straight from an exported
// function: both escape the API boundary untyped.
func Exported(n int) error {
	if n < 0 {
		return fmt.Errorf("service: negative n %d", n) // want `untyped fmt.Errorf escapes exported Exported`
	}
	if n == 0 {
		return errors.New("service: zero n") // want `untyped errors.New escapes exported Exported`
	}
	return nil
}

// Typed is the compliant shape: the escaping error carries a taxonomy
// code, so the service maps it to the right status.
func Typed(n int) error {
	if n < 0 {
		return errs.Newf(errs.CodeInvalidInput, "service: negative n %d", n)
	}
	return nil
}

// unexported helpers may build raw errors; their exported callers are
// responsible for wrapping before the error escapes.
func unexported() error {
	return fmt.Errorf("service: internal detail")
}

// The nojsonhot half of the service fixture: the HTTP layer negotiates
// binary frames for bulk arrays, so any service function whose
// signature carries raw float64 slices must stay off encoding/json.
// JSON remains legal for control payloads — request headers, response
// meta — carried in named structs.
package service

import "encoding/json"

// evalMeta is response meta: a named control-plane struct, so its
// codec is not the bulk path even though bulk handlers marshal it.
type evalMeta struct {
	PlanID string `json:"plan_id"`
}

// marshalMeta is control-plane JSON: no bulk arrays in the signature.
func marshalMeta(m evalMeta) ([]byte, error) {
	return json.Marshal(m)
}

// writePotentials pushes bulk potentials through JSON instead of the
// frame encoding.
func writePotentials(pot []float64) ([]byte, error) {
	return json.Marshal(pot) // want `encoding/json on the bulk-frame path \(writePotentials handles raw float64 arrays\)`
}

// readBatchBody parses density vectors — bulk data — with JSON.
func readBatchBody(raw []byte, dens *[][]float64) error {
	return json.Unmarshal(raw, dens) // want `encoding/json on the bulk-frame path \(readBatchBody handles raw float64 arrays\)`
}

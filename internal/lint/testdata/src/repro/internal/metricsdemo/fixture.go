// Package metricsdemo is the metricnames fixture: every obs.Registry
// registration, wherever it lives, must use a compile-time snake_case
// kifmm_* name and non-empty help text.
package metricsdemo

import "repro/internal/obs"

const helpRequests = "Total service requests."

// Register exercises each rule once against the fixture registry.
func Register(r *obs.Registry, suffix string) {
	r.Counter("kifmm_requests_total", helpRequests)
	r.CounterVec("kifmm_evals_total", "Evaluations by kernel.", "kernel")
	r.Counter("requests_total", "Total requests.")  // want `metric name "requests_total": must be snake_case`
	r.Gauge("kifmm_Queue_Depth", "Queue depth now") // want `metric name "kifmm_Queue_Depth": must be snake_case`
	r.Counter("kifmm_"+suffix, "Dynamic name.")     // want `metric name must be a compile-time string constant`
	r.Histogram("kifmm_eval_seconds", "")           // want `metric help text must be non-empty`
	r.GaugeFunc("kifmm_queue_depth", "Queue depth sampled on scrape.", func() float64 { return 0 })
}

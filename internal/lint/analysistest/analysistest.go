// Package analysistest runs lint analyzers over fixture packages under
// a testdata tree and checks the reported diagnostics against
// // want `regex` comments — a same-shaped stand-in for
// golang.org/x/tools/go/analysis/analysistest that works with the
// offline analysis shim (see internal/lint/analysis).
//
// Fixture layout mirrors x/tools: testdata/src/<import path>/*.go.
// Imports in fixture files resolve to other fixture packages when a
// matching directory exists under testdata/src (type-checked from
// source, recursively), and to the enclosing module's build cache
// otherwise (stdlib and real module packages, via gc export data).
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run loads the fixture package at testdata/src/<pkgPath>, applies the
// analyzer, and reports any mismatch between its diagnostics and the
// fixture's // want `regex` comments as test errors: a diagnostic with
// no matching want fails, and so does a want with no matching
// diagnostic. A fixture with no want comments asserts the analyzer is
// silent on it.
func Run(t testing.TB, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	RunAll(t, testdata, []*analysis.Analyzer{a}, pkgPath)
}

// RunAll is Run for a fixture shared by several analyzers: the pooled
// diagnostics of all of them are matched against the fixture's want
// comments, so one package can carry positive cases for multiple rules
// (the way real packages are subject to the whole analyzer suite).
func RunAll(t testing.TB, testdata string, analyzers []*analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkg := Load(t, testdata, pkgPath)

	type diag struct {
		pos token.Position
		msg string
	}
	var got []diag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report: func(d analysis.Diagnostic) {
				got = append(got, diag{pos: pkg.Fset.Position(d.Pos), msg: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer %s: %v", pkgPath, a.Name, err)
		}
	}

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range got {
		if !claimWant(wants, d.pos, d.msg) {
			t.Errorf("%s: unexpected diagnostic: %s", d.pos, d.msg)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching want %s", w.file, w.line, w.src)
		}
	}
}

// Load type-checks the fixture package at testdata/src/<pkgPath> and
// returns it ready for direct analysis or lint.Run.
func Load(t testing.TB, testdata, pkgPath string) *load.Package {
	t.Helper()
	pkg, err := loadFixture(testdata, pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// A want is one parsed // want `regex` expectation, anchored to the
// line its comment starts on.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	src     string
	matched bool
}

// wantLitRE extracts the Go string literals (back- or double-quoted)
// that follow the want marker.
var wantLitRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(pkg *load.Package) ([]*want, error) {
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " "), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := wantLitRE.FindAllString(rest, -1)
				if len(lits) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment: no string literal in %q", pos, c.Text)
				}
				for _, lit := range lits {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: want pattern %s: %v", pos, lit, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, src: lit})
				}
			}
		}
	}
	return wants, nil
}

// claimWant marks the first unmatched want on the diagnostic's line
// whose pattern matches the message, reporting whether one was found.
func claimWant(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func loadFixture(testdata, pkgPath string) (*load.Package, error) {
	src := filepath.Join(testdata, "src")
	ext, err := externalImports(src)
	if err != nil {
		return nil, err
	}
	exports, err := load.ExportData(testdata, ext...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	im := &fixtureImporter{
		fset:     fset,
		src:      src,
		cache:    make(map[string]*load.Package),
		fallback: load.ExportImporter(fset, exports),
	}
	return im.load(pkgPath)
}

// externalImports walks every fixture file and collects the imports
// that do not resolve to fixture directories — those must come from the
// enclosing module's build cache via export data.
func externalImports(src string) ([]string, error) {
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(src, filepath.FromSlash(p))); err == nil && st.IsDir() {
				continue // fixture-local package, type-checked from source
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// fixtureImporter resolves imports to fixture packages under
// testdata/src when a matching directory exists (from source,
// recursively, cached) and to gc export data otherwise.
type fixtureImporter struct {
	fset     *token.FileSet
	src      string
	cache    map[string]*load.Package
	fallback types.Importer
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(im.src, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return im.fallback.Import(path)
	}
	pkg, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (im *fixtureImporter) load(path string) (*load.Package, error) {
	if pkg, ok := im.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: fixture package %s: %v", path, err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysistest: fixture package %s: no Go files in %s", path, dir)
	}
	pkg, err := load.Check(im.fset, im, path, dir, goFiles)
	if err != nil {
		return nil, err
	}
	im.cache[path] = pkg
	return pkg, nil
}

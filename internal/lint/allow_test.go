package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/load"
)

const allowFixture = "testdata/src/repro/internal/parfmm/fixture.go"

// lineOf locates a marker substring in the fixture source so the
// assertions survive edits that shift line numbers.
func lineOf(t *testing.T, src []byte, marker string) int {
	t.Helper()
	for i, l := range strings.Split(string(src), "\n") {
		if strings.Contains(l, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, allowFixture)
	return 0
}

// TestAllowSuppression runs the full suite over the annotation fixture
// and checks every //lint:allow behavior: a matching annotation
// silences its finding (same-line and block form), an unannotated
// finding is reported, and stale, malformed and unknown-analyzer
// annotations are findings themselves.
func TestAllowSuppression(t *testing.T) {
	src, err := os.ReadFile(filepath.FromSlash(allowFixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.Load(t, "testdata", "repro/internal/parfmm")
	findings, err := lint.Run([]*load.Package{pkg}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		analyzer string
		line     int
	}
	got := make(map[key]string, len(findings))
	for _, f := range findings {
		got[key{f.Analyzer, f.Pos.Line}] = f.Message
	}

	expect := []struct {
		analyzer string
		marker   string
		contains string
	}{
		{"determinism", "marker: reported finding", "time.Now"},
		{lint.AllowAnalyzer, "marker: stale annotation", "stale //lint:allow determinism"},
		{lint.AllowAnalyzer, "//lint:allow\n", "malformed //lint:allow comment"},
		{lint.AllowAnalyzer, "marker: unknown analyzer", `unknown analyzer "nosuchanalyzer"`},
	}
	// The malformed annotation is the only line consisting of exactly
	// the bare prefix; find it by exact trimmed match instead.
	for _, e := range expect {
		var line int
		if e.marker == "//lint:allow\n" {
			for i, l := range strings.Split(string(src), "\n") {
				if strings.TrimSpace(l) == "//lint:allow" {
					line = i + 1
					break
				}
			}
			if line == 0 {
				t.Fatal("bare //lint:allow line not found in fixture")
			}
		} else {
			line = lineOf(t, src, e.marker)
		}
		msg, ok := got[key{e.analyzer, line}]
		if !ok {
			t.Errorf("missing %s finding at line %d (%s); got %v", e.analyzer, line, e.marker, findings)
			continue
		}
		if !strings.Contains(msg, e.contains) {
			t.Errorf("finding at line %d = %q, want substring %q", line, msg, e.contains)
		}
	}
	if len(findings) != len(expect) {
		t.Errorf("got %d findings, want %d:\n", len(findings), len(expect))
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}

	// The two annotated findings must be silenced.
	for _, marker := range []string{
		"fixture exercises same-line suppression",
		"fixture exercises block-form suppression",
	} {
		line := lineOf(t, src, marker)
		for k := range got {
			if k.line == line || k.line == line+1 {
				t.Errorf("finding near suppressed line %d (%s): %s", line, marker, got[k])
			}
		}
	}
}

// TestAllowStaleOnlyForRanAnalyzers: an annotation is only stale with
// respect to analyzers that actually ran — running a subset must not
// flag allows belonging to the analyzers that sat out.
func TestAllowStaleOnlyForRanAnalyzers(t *testing.T) {
	pkg := analysistest.Load(t, "testdata", "repro/internal/parfmm")
	findings, err := lint.Run([]*load.Package{pkg}, []*analysis.Analyzer{lint.NoJSONHot})
	if err != nil {
		t.Fatal(err)
	}
	// Malformed and unknown-analyzer annotations are structural and
	// always reported; the determinism allows must not be called stale.
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed + unknown):\n%v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != lint.AllowAnalyzer {
			t.Errorf("unexpected analyzer %s: %s", f.Analyzer, f)
		}
		if strings.Contains(f.Message, "stale") {
			t.Errorf("stale finding for an analyzer that did not run: %s", f)
		}
	}
}

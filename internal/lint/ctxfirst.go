package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// CtxFirst enforces the repository's context-first convention in
// library packages (everything that is not a main package or under
// cmd/):
//
//   - context.Background() is banned — library code threads the
//     caller's ctx so cancellation lands within one pass everywhere.
//     The documented legacy ctx-free wrappers (Evaluate over
//     EvaluateCtx and friends) carry //lint:allow ctxfirst
//     annotations, which keeps every exception visible in the diff
//     that introduces it.
//   - an exported function or method that launches goroutines must
//     take a context.Context as its first (non-receiver) parameter:
//     whoever starts concurrent work must be able to stop it.
var CtxFirst = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "ban context.Background() in library code and require ctx-first signatures on exported goroutine-launching functions",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" || strings.Contains(pass.Pkg.Path(), "/cmd/") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(pass.TypesInfo, call, "context", "Background") {
				pass.Reportf(call.Pos(), "context.Background() in library code: thread the caller's ctx; documented legacy wrappers annotate with //lint:allow ctxfirst <reason>")
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if launchesGoroutine(fd.Body) && !firstParamIsContext(pass.TypesInfo, fd.Type) {
				pass.Reportf(fd.Name.Pos(), "exported %s launches goroutines but does not take a context.Context first argument: the caller must be able to bound the work it starts", fd.Name.Name)
			}
		}
	}
	return nil, nil
}

// launchesGoroutine reports whether the body contains a go statement,
// including inside closures it defines (a closure's goroutines are
// still work this function wires up).
func launchesGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

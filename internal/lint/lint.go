// Package lint is the kifmm repository's static-analysis suite: custom
// analyzers (written against the go/analysis API, see
// internal/lint/analysis) that enforce invariants the codebase
// otherwise only checks at runtime, or not at all:
//
//   - determinism: no map-iteration-order-dependent accumulation, no
//     wall-clock or randomness inside the bitwise-deterministic engine
//     packages.
//   - ctxfirst: library code threads the caller's context — no
//     context.Background() outside cmd/ and documented legacy
//     wrappers; exported goroutine-launching functions take ctx first.
//   - errtaxonomy: errors escaping the service/cluster/client boundary
//     carry an errs code.
//   - nojsonhot: no encoding/json (or per-element fmt.Sprintf) on
//     compute or wire hot paths.
//   - metricnames: obs metric registrations use snake_case kifmm_*
//     literal names with help text, mirroring the runtime README
//     catalog test at compile time.
//
// Intentional exceptions are annotated in the source with
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the comment block directly above it, so
// every exception is visible in the diff that introduces it. A stale
// annotation — one that no longer suppresses anything — is itself a
// finding, so exceptions cannot outlive the code they excuse.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the full suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		CtxFirst,
		ErrTaxonomy,
		NoJSONHot,
		MetricNames,
	}
}

// AllowAnalyzer is the pseudo-analyzer name under which suite-level
// findings about //lint:allow comments themselves (stale, malformed,
// unknown analyzer) are reported. It cannot be suppressed.
const AllowAnalyzer = "lintallow"

// A Finding is one resolved diagnostic: an analyzer name, a position
// and a message, after //lint:allow suppression has been applied.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies the analyzers to every package, honors //lint:allow
// suppression comments, and returns the surviving findings sorted by
// position. Suppression comments that are malformed, name an unknown
// analyzer, or no longer match a finding are reported as AllowAnalyzer
// findings.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		raw, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, applyAllows(pkg, raw, known, ran)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// runAnalyzers applies each analyzer to one package, collecting raw
// (pre-suppression) findings.
func runAnalyzers(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var raw []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			raw = append(raw, Finding{
				Analyzer: name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return raw, nil
}

// allowComment is one parsed //lint:allow comment.
type allowComment struct {
	analyzer string
	reason   string
	pos      token.Position
	bad      string // non-empty when the comment itself is malformed
	used     bool
}

const allowPrefix = "//lint:allow"

// applyAllows filters raw findings through the package's //lint:allow
// comments and appends suite-level findings for comments that are
// malformed, reference an unknown analyzer, or suppress nothing.
// An allow comment matches a finding when both are in the same file and
// the comment sits on the finding's line, or above it separated only by
// comment lines (so stacked annotations and doc comments work).
func applyAllows(pkg *load.Package, raw []Finding, known, ran map[string]bool) []Finding {
	allows := make(map[string][]*allowComment) // filename -> comments
	commentLines := make(map[string]map[int]bool)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				start := pkg.Fset.Position(c.Pos())
				end := pkg.Fset.Position(c.End())
				lines := commentLines[start.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					commentLines[start.Filename] = lines
				}
				for l := start.Line; l <= end.Line; l++ {
					lines[l] = true
				}
				if ac := parseAllow(c.Text, start); ac != nil {
					allows[start.Filename] = append(allows[start.Filename], ac)
				}
			}
		}
	}

	var out []Finding
	for _, f := range raw {
		if suppressed(f, allows[f.Pos.Filename], commentLines[f.Pos.Filename]) {
			continue
		}
		out = append(out, f)
	}
	for _, file := range allows {
		for _, ac := range file {
			switch {
			case ac.bad != "":
				out = append(out, Finding{Analyzer: AllowAnalyzer, Pos: ac.pos, Message: ac.bad})
			case !known[ac.analyzer]:
				out = append(out, Finding{
					Analyzer: AllowAnalyzer, Pos: ac.pos,
					Message: fmt.Sprintf("unknown analyzer %q in %s comment", ac.analyzer, allowPrefix),
				})
			case ran[ac.analyzer] && !ac.used:
				out = append(out, Finding{
					Analyzer: AllowAnalyzer, Pos: ac.pos,
					Message: fmt.Sprintf("stale %s %s: no %s finding here — remove the annotation", allowPrefix, ac.analyzer, ac.analyzer),
				})
			}
		}
	}
	return out
}

// parseAllow recognizes //lint:allow comments; nil means the comment is
// not an allow annotation at all.
func parseAllow(text string, pos token.Position) *allowComment {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //lint:allowance — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return &allowComment{
			pos: pos,
			bad: fmt.Sprintf("malformed %s comment: want %s <analyzer> <reason>", allowPrefix, allowPrefix),
		}
	}
	return &allowComment{
		analyzer: fields[0],
		reason:   strings.Join(fields[1:], " "),
		pos:      pos,
	}
}

// suppressed reports whether any allow comment matches the finding,
// marking the comment used.
func suppressed(f Finding, allows []*allowComment, comments map[int]bool) bool {
	if f.Analyzer == AllowAnalyzer {
		return false
	}
	hit := false
	for _, ac := range allows {
		if ac.bad != "" || ac.analyzer != f.Analyzer {
			continue
		}
		if ac.pos.Line == f.Pos.Line || reachesThroughComments(ac.pos.Line, f.Pos.Line, comments) {
			ac.used = true
			hit = true
		}
	}
	return hit
}

// reachesThroughComments reports whether every line strictly between
// from and to is part of a comment, i.e. the annotation block sits
// directly above the finding.
func reachesThroughComments(from, to int, comments map[int]bool) bool {
	if from >= to {
		return false
	}
	for l := from + 1; l < to; l++ {
		if !comments[l] {
			return false
		}
	}
	return true
}

// --- shared analyzer helpers ---

// pathMatches reports whether pkgPath equals or ends with one of the
// given path suffixes on an element boundary, so configured names like
// "internal/fmm" match both "repro/internal/fmm" and analysistest
// fixture paths.
func pathMatches(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether the call invokes the package-level function
// pkgPath.name, resolved through type information (so import aliases
// and shadowing are handled).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// usesPackage reports (at the first use position) whether the subtree
// mentions any identifier imported from pkgPath — e.g. json.Marshal,
// json.NewEncoder, or a json.Decoder type reference.
func usesPackage(info *types.Info, n ast.Node, pkgPath string) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == pkgPath {
			pos, found = id.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

// firstParamIsContext reports whether the function type's first
// parameter is context.Context.
func firstParamIsContext(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	t := info.TypeOf(ft.Params.List[0].Type)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// Package tree builds the adaptive octree of the FMM and the four
// interaction lists the paper defines in Section 3.1:
//
//   - U list: for a leaf B, B itself and the leaf boxes adjacent to B;
//   - V list: the children of the neighbors of B's parent that are not
//     adjacent to B;
//   - W list: for a leaf B, the descendants of B's neighbors whose
//     parents are adjacent to B but which are not adjacent to B;
//   - X list: all boxes A such that B is in A's W list.
//
// Boxes are stored in level-by-level (breadth-first) order, matching the
// "global tree array" layout the parallel algorithm communicates with.
// Points are permuted into Morton order so every box owns a contiguous
// range of the source and target arrays.
package tree

import (
	"context"
	"fmt"
	"sort"
	"unsafe"

	"repro/internal/morton"
)

// Nil marks an absent box index.
const Nil = int32(-1)

// Box is one node of the adaptive octree.
type Box struct {
	// Key identifies the box cell; Level() is Key.Level.
	Key morton.Key
	// Parent is the index of the parent box, Nil for the root.
	Parent int32
	// Children holds the indices of the (up to eight) children; Nil for
	// absent octants. Empty octants are pruned.
	Children [8]int32
	// Leaf reports whether the box was not subdivided.
	Leaf bool
	// SrcStart/SrcCount delimit this box's sources in Tree.SrcPoints.
	SrcStart, SrcCount int
	// TrgStart/TrgCount delimit this box's targets in Tree.TrgPoints.
	TrgStart, TrgCount int
	// U, V, W, X are the interaction lists (box indices). U and W are
	// populated only for leaves; X is the dual of W.
	U, V, W, X []int32
}

// Level returns the box depth (root = 0).
func (b *Box) Level() int { return int(b.Key.Level) }

// Tree is an adaptive octree over a set of source and target points.
type Tree struct {
	// Center and HalfWidth describe the root cube.
	Center    [3]float64
	HalfWidth float64
	// Boxes holds all boxes in breadth-first (level-by-level) order.
	Boxes []Box
	// LevelStart[l] is the index of the first box at level l;
	// LevelStart[len] = len(Boxes). Levels are contiguous by construction.
	LevelStart []int
	// MaxPoints is the leaf splitting threshold s.
	MaxPoints int
	// SrcPoints and TrgPoints are the coordinates permuted into Morton
	// order; SrcPerm[i] (TrgPerm[i]) is the original index of permuted
	// point i.
	SrcPoints, TrgPoints []float64
	SrcPerm, TrgPerm     []int32

	index map[morton.Key]int32
}

// Config controls tree construction.
type Config struct {
	// MaxPoints is s, the maximum number of source (or target) points in
	// a leaf (paper notation). A box with more sources or more targets
	// than s is subdivided. Defaults to 60, the paper's usual choice.
	MaxPoints int
	// MaxDepth caps the tree depth (default and maximum morton.MaxLevel).
	MaxDepth int
	// Center/HalfWidth force the root cube; when HalfWidth is zero the
	// bounding cube of all points is used. The parallel algorithm passes
	// the globally agreed domain here.
	Center    [3]float64
	HalfWidth float64
}

type keyed struct {
	key  morton.Key
	orig int32
}

// Build constructs the adaptive octree over src and trg (flat x,y,z
// coordinate slices) and computes all four interaction lists. It is
// BuildCtx with context.Background().
func Build(src, trg []float64, cfg Config) (*Tree, error) {
	return BuildCtx(context.Background(), src, trg, cfg) //lint:allow ctxfirst documented legacy ctx-free wrapper over BuildCtx
}

// BuildCtx is the context-aware tree construction: ctx is checked
// between the expensive stages (Morton sort, box construction,
// interaction lists) and inside the per-level loops of the latter two,
// so cancelling a pathological build (hundreds of millions of points,
// or an adversarial deep tree) lands within one level instead of after
// the whole construction. On cancellation the partial tree is discarded
// and ctx.Err() is returned.
func BuildCtx(ctx context.Context, src, trg []float64, cfg Config) (*Tree, error) {
	if len(src)%3 != 0 || len(trg)%3 != 0 {
		return nil, fmt.Errorf("tree: coordinate slices must have length divisible by 3")
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 60
	}
	if cfg.MaxDepth <= 0 || cfg.MaxDepth > morton.MaxLevel {
		cfg.MaxDepth = morton.MaxLevel
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := &Tree{MaxPoints: cfg.MaxPoints}
	if cfg.HalfWidth > 0 {
		t.Center, t.HalfWidth = cfg.Center, cfg.HalfWidth
	} else {
		all := make([]float64, 0, len(src)+len(trg))
		all = append(all, src...)
		all = append(all, trg...)
		t.Center, t.HalfWidth = boundingCube(all)
	}
	srcKeys := sortByKey(src, t.Center, t.HalfWidth)
	trgKeys := sortByKey(trg, t.Center, t.HalfWidth)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.SrcPoints, t.SrcPerm = permute(src, srcKeys)
	t.TrgPoints, t.TrgPerm = permute(trg, trgKeys)
	if err := t.build(ctx, srcKeys, trgKeys, cfg.MaxDepth); err != nil {
		return nil, err
	}
	if err := t.buildLists(ctx); err != nil {
		return nil, err
	}
	return t, nil
}

func boundingCube(pts []float64) ([3]float64, float64) {
	if len(pts) == 0 {
		return [3]float64{}, 1
	}
	lo := [3]float64{pts[0], pts[1], pts[2]}
	hi := lo
	for i := 0; i+2 < len(pts); i += 3 {
		for d := 0; d < 3; d++ {
			if pts[i+d] < lo[d] {
				lo[d] = pts[i+d]
			}
			if pts[i+d] > hi[d] {
				hi[d] = pts[i+d]
			}
		}
	}
	var c [3]float64
	hw := 0.0
	for d := 0; d < 3; d++ {
		c[d] = (lo[d] + hi[d]) / 2
		if w := (hi[d] - lo[d]) / 2; w > hw {
			hw = w
		}
	}
	if hw == 0 {
		hw = 1
	}
	return c, hw * (1 + 1e-10)
}

func sortByKey(pts []float64, c [3]float64, hw float64) []keyed {
	n := len(pts) / 3
	ks := make([]keyed, n)
	for i := 0; i < n; i++ {
		ks[i] = keyed{morton.PointKey(pts[3*i], pts[3*i+1], pts[3*i+2], c, hw), int32(i)}
	}
	sort.Slice(ks, func(a, b int) bool {
		if ks[a].key == ks[b].key {
			return ks[a].orig < ks[b].orig
		}
		return ks[a].key.Less(ks[b].key)
	})
	return ks
}

func permute(pts []float64, ks []keyed) ([]float64, []int32) {
	out := make([]float64, len(pts))
	perm := make([]int32, len(ks))
	for i, k := range ks {
		perm[i] = k.orig
		copy(out[3*i:3*i+3], pts[3*k.orig:3*k.orig+3])
	}
	return out, perm
}

// buildCheckEvery is how many boxes the per-level construction loops
// process between context checks: frequent enough that cancellation
// lands promptly even on a single enormous level, rare enough that the
// atomic load never shows up in profiles.
const buildCheckEvery = 1 << 12

// build creates boxes breadth-first, splitting every box whose source or
// target count exceeds MaxPoints, pruning empty octants. ctx is checked
// once per level and every buildCheckEvery boxes within a level.
func (t *Tree) build(ctx context.Context, srcKeys, trgKeys []keyed, maxDepth int) error {
	t.index = make(map[morton.Key]int32)
	root := Box{
		Key: morton.Key{}, Parent: Nil, Leaf: true,
		SrcStart: 0, SrcCount: len(srcKeys),
		TrgStart: 0, TrgCount: len(trgKeys),
	}
	for i := range root.Children {
		root.Children[i] = Nil
	}
	t.Boxes = []Box{root}
	t.index[root.Key] = 0
	t.LevelStart = []int{0}
	level := 0
	for start, end := 0, 1; start < end; start, end = end, len(t.Boxes) {
		t.LevelStart = append(t.LevelStart, end)
		level++
		if level > maxDepth {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for bi := start; bi < end; bi++ {
			if (bi-start)%buildCheckEvery == buildCheckEvery-1 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			b := &t.Boxes[bi]
			if b.SrcCount <= t.MaxPoints && b.TrgCount <= t.MaxPoints {
				continue
			}
			b.Leaf = false
			childLevel := uint8(b.Level() + 1)
			// Split this box's contiguous ranges by child octant; the
			// Morton sort makes each child a contiguous subrange.
			srcSeg := srcKeys[b.SrcStart : b.SrcStart+b.SrcCount]
			trgSeg := trgKeys[b.TrgStart : b.TrgStart+b.TrgCount]
			srcOff, trgOff := b.SrcStart, b.TrgStart
			so, to := 0, 0
			for o := 0; o < 8; o++ {
				ck := b.Key.Child(o)
				sn := countPrefix(srcSeg[so:], ck, childLevel)
				tn := countPrefix(trgSeg[to:], ck, childLevel)
				if sn == 0 && tn == 0 {
					continue
				}
				child := Box{
					Key: ck, Parent: int32(bi), Leaf: true,
					SrcStart: srcOff + so, SrcCount: sn,
					TrgStart: trgOff + to, TrgCount: tn,
				}
				for i := range child.Children {
					child.Children[i] = Nil
				}
				ci := int32(len(t.Boxes))
				t.Boxes = append(t.Boxes, child)
				t.index[ck] = ci
				t.Boxes[bi].Children[o] = ci
				b = &t.Boxes[bi] // re-take: append may have moved the slice
				so += sn
				to += tn
			}
		}
	}
	// Normalize LevelStart to end with len(Boxes) exactly once.
	for len(t.LevelStart) > 1 && t.LevelStart[len(t.LevelStart)-1] == t.LevelStart[len(t.LevelStart)-2] {
		t.LevelStart = t.LevelStart[:len(t.LevelStart)-1]
	}
	if t.LevelStart[len(t.LevelStart)-1] != len(t.Boxes) {
		t.LevelStart = append(t.LevelStart, len(t.Boxes))
	}
	return nil
}

// countPrefix returns how many leading keys in seg are descendants of (or
// equal to) the child cell ck at the given level.
func countPrefix(seg []keyed, ck morton.Key, level uint8) int {
	n := 0
	for n < len(seg) && seg[n].key.AtLevel(level) == ck {
		n++
	}
	return n
}

// Assemble wraps an externally built box topology into a Tree and
// computes the interaction lists. The parallel algorithm uses it: every
// rank constructs the identical global tree array level by level (paper
// Section 3.1) with its own local point ranges in SrcStart/SrcCount (and
// TrgStart/TrgCount), then assembles the lists locally. Boxes must be in
// breadth-first order with levelStart offsets as produced by that
// construction; srcPoints/srcPerm are the rank's Morton-sorted local
// points (sources and targets are the same set in the parallel driver).
func Assemble(center [3]float64, halfWidth float64, boxes []Box, levelStart []int, srcPoints []float64, srcPerm []int32, maxPoints int) *Tree {
	t := &Tree{
		Center: center, HalfWidth: halfWidth,
		Boxes: boxes, LevelStart: levelStart,
		MaxPoints: maxPoints,
		SrcPoints: srcPoints, TrgPoints: srcPoints,
		SrcPerm: srcPerm, TrgPerm: srcPerm,
		index: make(map[morton.Key]int32, len(boxes)),
	}
	for i := range boxes {
		t.index[boxes[i].Key] = int32(i)
	}
	t.buildLists(context.Background()) //lint:allow ctxfirst parallel ranks carry no ctx; Assemble is in-memory list construction
	return t
}

// SortPointsByKey Morton-sorts pts against the cube (center, halfWidth)
// and returns the permuted coordinates, the permutation (original index
// of each sorted point), and the sorted leaf-level keys. It is exported
// for the parallel tree construction, which must sort local points
// against the globally agreed domain.
func SortPointsByKey(pts []float64, center [3]float64, halfWidth float64) (sorted []float64, perm []int32, keys []morton.Key) {
	ks := sortByKey(pts, center, halfWidth)
	sorted, perm = permute(pts, ks)
	keys = make([]morton.Key, len(ks))
	for i := range ks {
		keys[i] = ks[i].key
	}
	return sorted, perm, keys
}

// CountRange returns how many keys in the sorted slice fall under the
// box key b (descendants at leaf resolution), searching within
// keys[lo:hi]. Keys must be Morton-sorted.
func CountRange(keys []morton.Key, lo, hi int, b morton.Key) int {
	n := 0
	for i := lo; i < hi; i++ {
		if keys[i].AtLevel(b.Level) == b {
			n++
		} else if n > 0 {
			break
		}
	}
	return n
}

// Depth returns the number of levels in the tree (root-only tree: 1).
func (t *Tree) Depth() int { return len(t.LevelStart) - 1 }

// Find returns the index of the box with the given key, or Nil.
func (t *Tree) Find(k morton.Key) int32 {
	if i, ok := t.index[k]; ok {
		return i
	}
	return Nil
}

// BoxCenter returns the center coordinates of box bi.
func (t *Tree) BoxCenter(bi int32) [3]float64 {
	b := &t.Boxes[bi]
	ix, iy, iz := b.Key.Decode()
	w := t.HalfWidth * 2 / float64(uint64(1)<<uint(b.Level()))
	return [3]float64{
		t.Center[0] - t.HalfWidth + (float64(ix)+0.5)*w,
		t.Center[1] - t.HalfWidth + (float64(iy)+0.5)*w,
		t.Center[2] - t.HalfWidth + (float64(iz)+0.5)*w,
	}
}

// BoxHalfWidth returns the half-width of a box at the given level.
func (t *Tree) BoxHalfWidth(level int) float64 {
	return t.HalfWidth / float64(uint64(1)<<uint(level))
}

// SrcSlice returns the permuted source coordinates of box bi.
func (t *Tree) SrcSlice(bi int32) []float64 {
	b := &t.Boxes[bi]
	return t.SrcPoints[3*b.SrcStart : 3*(b.SrcStart+b.SrcCount)]
}

// TrgSlice returns the permuted target coordinates of box bi.
func (t *Tree) TrgSlice(bi int32) []float64 {
	b := &t.Boxes[bi]
	return t.TrgPoints[3*b.TrgStart : 3*(b.TrgStart+b.TrgCount)]
}

// Leaves returns the indices of all leaf boxes.
func (t *Tree) Leaves() []int32 {
	var out []int32
	for i := range t.Boxes {
		if t.Boxes[i].Leaf {
			out = append(out, int32(i))
		}
	}
	return out
}

// MemoryBytes estimates the resident size of the tree: coordinates,
// permutations, the box array with its interaction lists, and the key
// index. The evaluation service uses it for byte-bounded plan caching.
func (t *Tree) MemoryBytes() int64 {
	b := int64(len(t.SrcPoints)+len(t.TrgPoints)) * 8
	b += int64(len(t.SrcPerm)+len(t.TrgPerm)) * 4
	b += int64(len(t.LevelStart)) * 8
	b += int64(len(t.Boxes)) * int64(unsafe.Sizeof(Box{}))
	for i := range t.Boxes {
		bx := &t.Boxes[i]
		b += int64(len(bx.U)+len(bx.V)+len(bx.W)+len(bx.X)) * 4
	}
	// Key index: ~key + value + bucket overhead per entry.
	b += int64(len(t.index)) * 24
	return b
}

package tree

import (
	"context"

	"repro/internal/morton"
)

// Adjacent reports whether the closed cells of boxes a and b intersect
// (share at least a face, edge or corner point). Boxes at different
// levels are compared by aligning both to the finer resolution.
func Adjacent(a, b morton.Key) bool {
	ax, ay, az := a.Decode()
	bx, by, bz := b.Decode()
	la, lb := uint(a.Level), uint(b.Level)
	f := la
	if lb > f {
		f = lb
	}
	sa, sb := f-la, f-lb
	return segTouch(ax, sa, bx, sb) && segTouch(ay, sa, by, sb) && segTouch(az, sa, bz, sb)
}

// segTouch reports whether intervals [a<<sa, (a+1)<<sa] and
// [b<<sb, (b+1)<<sb] intersect (closed intervals, so touching counts).
func segTouch(a uint32, sa uint, b uint32, sb uint) bool {
	a0 := uint64(a) << sa
	a1 := uint64(a+1) << sa
	b0 := uint64(b) << sb
	b1 := uint64(b+1) << sb
	return a0 <= b1 && b0 <= a1
}

// buildLists fills the U, V, W and X lists of every box, using the
// paper's definitions verbatim (Section 3.1). List construction costs
// as much as box construction on large trees, so ctx is checked on the
// same buildCheckEvery cadence.
func (t *Tree) buildLists(ctx context.Context) error {
	colleagues := t.computeColleagues()
	for bi := range t.Boxes {
		if bi%buildCheckEvery == buildCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		b := &t.Boxes[bi]
		// V list: children of the parent's neighbors that are not
		// adjacent to B. Exists for every box with a parent.
		if b.Parent != Nil {
			for _, pc := range colleagues[b.Parent] {
				for _, a := range t.Boxes[pc].Children {
					if a == Nil {
						continue
					}
					if !Adjacent(b.Key, t.Boxes[a].Key) {
						b.V = append(b.V, a)
					}
				}
			}
		}
		if !b.Leaf {
			continue
		}
		// U list: B itself plus all adjacent leaves, coarser or finer.
		b.U = t.adjacentLeaves(int32(bi), colleagues)
		// W list: descendants of B's neighbors whose parents are adjacent
		// to B but which are not adjacent to B themselves. Recursion into
		// a colleague stops at the first non-adjacent descendant (its own
		// descendants' parents are then not adjacent to B).
		for _, c := range colleagues[bi] {
			t.collectW(b, c)
		}
	}
	// X list is the dual of W: A ∈ X(B) iff B ∈ W(A).
	for bi := range t.Boxes {
		for _, w := range t.Boxes[bi].W {
			t.Boxes[w].X = append(t.Boxes[w].X, int32(bi))
		}
	}
	return nil
}

// computeColleagues returns, for every box, the existing same-level
// adjacent boxes (the "neighbors" of the paper). A child's colleagues are
// found among its siblings and the children of its parent's colleagues.
func (t *Tree) computeColleagues() [][]int32 {
	out := make([][]int32, len(t.Boxes))
	for bi := range t.Boxes {
		b := &t.Boxes[bi]
		if b.Parent == Nil {
			continue
		}
		consider := func(ci int32) {
			if ci == Nil || ci == int32(bi) {
				return
			}
			if Adjacent(b.Key, t.Boxes[ci].Key) {
				out[bi] = append(out[bi], ci)
			}
		}
		for _, s := range t.Boxes[b.Parent].Children {
			consider(s)
		}
		for _, pc := range out[b.Parent] {
			for _, c := range t.Boxes[pc].Children {
				consider(c)
			}
		}
	}
	return out
}

// adjacentLeaves returns the U list of leaf bi: itself, adjacent leaves
// at the same or finer levels (via colleagues), and adjacent coarser
// leaves (leaf ancestors' colleagues).
func (t *Tree) adjacentLeaves(bi int32, colleagues [][]int32) []int32 {
	b := &t.Boxes[bi]
	seen := map[int32]bool{bi: true}
	u := []int32{bi}
	add := func(x int32) {
		if !seen[x] {
			seen[x] = true
			u = append(u, x)
		}
	}
	// Same level and finer: descend into adjacent colleagues.
	var descend func(ci int32)
	descend = func(ci int32) {
		c := &t.Boxes[ci]
		if !Adjacent(b.Key, c.Key) {
			return
		}
		if c.Leaf {
			add(ci)
			return
		}
		for _, ch := range c.Children {
			if ch != Nil {
				descend(ch)
			}
		}
	}
	for _, c := range colleagues[bi] {
		descend(c)
	}
	// Coarser: walk ancestors; a coarser adjacent leaf must be a
	// colleague of one of B's ancestors (and adjacent to B itself).
	for p := b.Parent; p != Nil; p = t.Boxes[p].Parent {
		for _, c := range colleagues[p] {
			if t.Boxes[c].Leaf && Adjacent(b.Key, t.Boxes[c].Key) {
				add(c)
			}
		}
	}
	return u
}

// collectW descends from colleague c of leaf b collecting W-list members.
func (t *Tree) collectW(b *Box, c int32) {
	cb := &t.Boxes[c]
	if cb.Leaf {
		return // adjacent leaf: handled by the U list
	}
	for _, ch := range cb.Children {
		if ch == Nil {
			continue
		}
		if Adjacent(b.Key, t.Boxes[ch].Key) {
			t.collectW(b, ch)
		} else {
			b.W = append(b.W, ch)
		}
	}
}

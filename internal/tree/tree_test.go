package tree

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/morton"
)

func buildRandom(t *testing.T, n, s int, clustered bool, seed int64) *Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pts []float64
	if clustered {
		pts = geom.Flatten(geom.CornerClusters(rng, n, 0.3, 1))
	} else {
		pts = geom.Flatten(geom.UniformCube(rng, n))
	}
	tr, err := Build(pts, pts, Config{MaxPoints: s})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEveryPointInExactlyOneLeaf(t *testing.T) {
	tr := buildRandom(t, 2000, 30, true, 1)
	coveredSrc := make([]int, len(tr.SrcPoints)/3)
	for _, li := range tr.Leaves() {
		b := &tr.Boxes[li]
		for i := b.SrcStart; i < b.SrcStart+b.SrcCount; i++ {
			coveredSrc[i]++
		}
	}
	for i, c := range coveredSrc {
		if c != 1 {
			t.Fatalf("source %d covered by %d leaves", i, c)
		}
	}
}

func TestLeafCountsRespectThreshold(t *testing.T) {
	s := 25
	tr := buildRandom(t, 3000, s, false, 2)
	for _, li := range tr.Leaves() {
		b := &tr.Boxes[li]
		if b.Level() < morton.MaxLevel && (b.SrcCount > s || b.TrgCount > s) {
			t.Fatalf("leaf %d exceeds threshold: src=%d trg=%d", li, b.SrcCount, b.TrgCount)
		}
	}
}

func TestParentChildRangesNest(t *testing.T) {
	tr := buildRandom(t, 2000, 40, true, 3)
	for bi := range tr.Boxes {
		b := &tr.Boxes[bi]
		if b.Leaf {
			continue
		}
		srcSum, trgSum := 0, 0
		for _, c := range b.Children {
			if c == Nil {
				continue
			}
			cb := &tr.Boxes[c]
			if cb.Parent != int32(bi) {
				t.Fatalf("child %d has wrong parent", c)
			}
			if cb.SrcStart < b.SrcStart || cb.SrcStart+cb.SrcCount > b.SrcStart+b.SrcCount {
				t.Fatalf("child src range escapes parent")
			}
			srcSum += cb.SrcCount
			trgSum += cb.TrgCount
			if !b.Key.IsAncestorOf(cb.Key) {
				t.Fatalf("child key not under parent key")
			}
		}
		if srcSum != b.SrcCount || trgSum != b.TrgCount {
			t.Fatalf("children do not partition parent points: %d/%d src, %d/%d trg",
				srcSum, b.SrcCount, trgSum, b.TrgCount)
		}
	}
}

func TestPointsInsideTheirBoxes(t *testing.T) {
	tr := buildRandom(t, 1000, 20, false, 4)
	for bi := range tr.Boxes {
		b := &tr.Boxes[bi]
		c := tr.BoxCenter(int32(bi))
		hw := tr.BoxHalfWidth(b.Level()) * (1 + 1e-12)
		pts := tr.SrcSlice(int32(bi))
		for i := 0; i+2 < len(pts); i += 3 {
			for d := 0; d < 3; d++ {
				if pts[i+d] < c[d]-hw || pts[i+d] > c[d]+hw {
					t.Fatalf("box %d: point coordinate %v outside [%v,%v]", bi, pts[i+d], c[d]-hw, c[d]+hw)
				}
			}
		}
	}
}

func TestLevelStartIsBreadthFirst(t *testing.T) {
	tr := buildRandom(t, 4000, 30, true, 5)
	for l := 0; l < tr.Depth(); l++ {
		for bi := tr.LevelStart[l]; bi < tr.LevelStart[l+1]; bi++ {
			if tr.Boxes[bi].Level() != l {
				t.Fatalf("box %d at level %d filed under level %d", bi, tr.Boxes[bi].Level(), l)
			}
		}
	}
	if tr.LevelStart[len(tr.LevelStart)-1] != len(tr.Boxes) {
		t.Fatal("LevelStart must end at len(Boxes)")
	}
}

func TestAdjacency(t *testing.T) {
	root := morton.Key{}
	a := root.Child(0) // octant (0,0,0) at level 1
	b := root.Child(7) // octant (1,1,1): touches a at the center corner
	if !Adjacent(a, b) {
		t.Error("diagonal octants share the center point and are adjacent")
	}
	deep := b.Child(7).Child(7) // far corner of the domain
	if Adjacent(a, deep) {
		t.Error("far corner cell is not adjacent to opposite octant")
	}
	if !Adjacent(a, b.Child(0)) {
		t.Error("child at shared corner must be adjacent")
	}
	if !Adjacent(root, deep) {
		t.Error("every cell is adjacent to an enclosing ancestor")
	}
	if !Adjacent(a, a) {
		t.Error("a box is adjacent to itself")
	}
}

// TestInteractionListsPartition is the fundamental correctness theorem of
// the adaptive FMM: for every leaf L and every source leaf S, the pair is
// covered by exactly one interaction path:
//
//	U:  S ∈ U(L)                              (direct)
//	V:  B ∈ V(A) for ancestors-or-self A of L, B of S  (M2L + L2L chain)
//	W:  B ∈ W(L) for an ancestor-or-self B of S        (M2T)
//	X:  S ∈ X(A) for an ancestor-or-self A of L        (S2L + L2L chain)
func TestInteractionListsPartition(t *testing.T) {
	for _, tc := range []struct {
		name      string
		clustered bool
		n, s      int
		seed      int64
	}{
		{"uniform", false, 800, 20, 10},
		{"clustered", true, 800, 15, 11},
		{"tiny", false, 50, 5, 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildRandom(t, tc.n, tc.s, tc.clustered, tc.seed)
			leaves := tr.Leaves()
			ancestors := func(b int32) []int32 {
				out := []int32{b}
				for p := tr.Boxes[b].Parent; p != Nil; p = tr.Boxes[p].Parent {
					out = append(out, p)
				}
				return out
			}
			inList := func(list []int32, x int32) bool {
				for _, v := range list {
					if v == x {
						return true
					}
				}
				return false
			}
			for _, L := range leaves {
				ancL := ancestors(L)
				for _, S := range leaves {
					ancS := ancestors(S)
					count := 0
					kind := ""
					if inList(tr.Boxes[L].U, S) {
						count++
						kind += "U"
					}
					for _, a := range ancL {
						for _, b := range ancS {
							if inList(tr.Boxes[a].V, b) {
								count++
								kind += "V"
							}
						}
					}
					for _, b := range ancS {
						if inList(tr.Boxes[L].W, b) {
							count++
							kind += "W"
						}
					}
					for _, a := range ancL {
						if inList(tr.Boxes[a].X, S) {
							count++
							kind += "X"
						}
					}
					if count != 1 {
						t.Fatalf("leaf pair (%d,%d) covered %d times (%s)", L, S, count, kind)
					}
				}
			}
		})
	}
}

func TestListGeometryInvariants(t *testing.T) {
	tr := buildRandom(t, 1500, 25, true, 13)
	for bi := range tr.Boxes {
		b := &tr.Boxes[bi]
		for _, v := range b.V {
			vb := &tr.Boxes[v]
			if vb.Level() != b.Level() {
				t.Fatalf("V-list member at different level")
			}
			if Adjacent(b.Key, vb.Key) {
				t.Fatalf("V-list member adjacent to box")
			}
			if b.Parent != Nil && vb.Parent != Nil && !Adjacent(tr.Boxes[b.Parent].Key, tr.Boxes[vb.Parent].Key) {
				t.Fatalf("V-list member's parent not adjacent to box's parent")
			}
		}
		for _, u := range b.U {
			if !tr.Boxes[u].Leaf {
				t.Fatalf("U-list member must be a leaf")
			}
			if !Adjacent(b.Key, tr.Boxes[u].Key) {
				t.Fatalf("U-list member must be adjacent")
			}
		}
		for _, w := range b.W {
			wb := &tr.Boxes[w]
			if wb.Level() <= b.Level() {
				t.Fatalf("W-list member must be finer than the leaf")
			}
			if Adjacent(b.Key, wb.Key) {
				t.Fatalf("W-list member must not be adjacent")
			}
			if wb.Parent == Nil || !Adjacent(b.Key, tr.Boxes[wb.Parent].Key) {
				t.Fatalf("W-list member's parent must be adjacent")
			}
		}
		if !b.Leaf && (len(b.U) > 0 || len(b.W) > 0) {
			t.Fatalf("non-leaf boxes have empty U and W lists")
		}
	}
	// X is the exact dual of W.
	wPairs := map[[2]int32]bool{}
	for bi := range tr.Boxes {
		for _, w := range tr.Boxes[bi].W {
			wPairs[[2]int32{int32(bi), w}] = true
		}
	}
	xCount := 0
	for bi := range tr.Boxes {
		for _, x := range tr.Boxes[bi].X {
			if !wPairs[[2]int32{x, int32(bi)}] {
				t.Fatalf("X pair (%d,%d) without matching W", bi, x)
			}
			xCount++
		}
	}
	if xCount != len(wPairs) {
		t.Fatalf("X/W duality broken: %d vs %d", xCount, len(wPairs))
	}
}

func TestVListBoundedBy189(t *testing.T) {
	// On any octree, |V| <= 6³ - 3³ = 189 (the paper's V list comes from
	// the 189 non-adjacent children of the parent's 26 neighbors).
	tr := buildRandom(t, 5000, 20, false, 14)
	for bi := range tr.Boxes {
		if len(tr.Boxes[bi].V) > 189 {
			t.Fatalf("V list of box %d has %d > 189 entries", bi, len(tr.Boxes[bi].V))
		}
	}
}

func TestPermutationIsBijection(t *testing.T) {
	tr := buildRandom(t, 700, 30, true, 15)
	seen := make([]bool, len(tr.SrcPerm))
	for _, p := range tr.SrcPerm {
		if seen[p] {
			t.Fatal("permutation repeats an index")
		}
		seen[p] = true
	}
}

func TestDegenerateInputs(t *testing.T) {
	// All points coincident: the tree must stop at MaxDepth, not loop.
	pts := make([]float64, 3*100)
	for i := range pts {
		pts[i] = 0.5
	}
	tr, err := Build(pts, pts, Config{MaxPoints: 10, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 7 {
		t.Fatalf("depth %d exceeds MaxDepth+1", tr.Depth())
	}
	// Empty input.
	tr, err = Build(nil, nil, Config{MaxPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Boxes) != 1 || !tr.Boxes[0].Leaf {
		t.Fatal("empty input must produce a single leaf root")
	}
	// Single point.
	tr, err = Build([]float64{0.1, 0.2, 0.3}, []float64{0.1, 0.2, 0.3}, Config{MaxPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Boxes[0].SrcCount != 1 {
		t.Fatal("single point lost")
	}
	// Invalid coordinate slice.
	if _, err := Build([]float64{1, 2}, nil, Config{}); err == nil {
		t.Fatal("want error for malformed coordinates")
	}
}

func TestDistinctSourceAndTargetSets(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	src := geom.Flatten(geom.UniformCube(rng, 300))
	trg := geom.Flatten(geom.CornerClusters(rng, 200, 0.4, 1))
	tr, err := Build(src, trg, Config{MaxPoints: 15})
	if err != nil {
		t.Fatal(err)
	}
	nSrc, nTrg := 0, 0
	for _, li := range tr.Leaves() {
		nSrc += tr.Boxes[li].SrcCount
		nTrg += tr.Boxes[li].TrgCount
	}
	if nSrc != 300 || nTrg != 200 {
		t.Fatalf("leaf totals %d/%d, want 300/200", nSrc, nTrg)
	}
}

// countdownCtx reports cancellation from its (budget+1)-th Err() call
// on — a deterministic way to land a cancellation in the middle of a
// build, past the up-front stage-boundary checks.
type countdownCtx struct {
	context.Context
	budget int
	calls  int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.budget {
		return context.Canceled
	}
	return nil
}

// TestBuildCtxCancellation: a cancelled context aborts the construction
// (pre-cancelled up front, and mid-build via a context that fires during
// the per-level loops), returning ctx.Err() instead of a tree.
func TestBuildCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := geom.Flatten(geom.UniformCube(rng, 3000))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if tr, err := BuildCtx(ctx, pts, pts, Config{MaxPoints: 10}); !errors.Is(err, context.Canceled) || tr != nil {
		t.Fatalf("pre-cancelled BuildCtx = (%v, %v), want (nil, context.Canceled)", tr, err)
	}

	// A context that starts failing only after the up-front checks have
	// passed: the abort can then only come from the per-level loop
	// checks, proving they exist (MaxPoints 1 forces deep subdivision,
	// so several levels are visited).
	cctx := &countdownCtx{Context: context.Background(), budget: 3}
	if _, err := BuildCtx(cctx, pts, pts, Config{MaxPoints: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build cancel err = %v, want context.Canceled", err)
	}
	if cctx.calls <= 3 {
		t.Fatalf("cancellation fired on call %d, before the per-level loops", cctx.calls)
	}

	// And an uncancelled BuildCtx matches Build.
	tr, err := BuildCtx(context.Background(), pts, pts, Config{MaxPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(pts, pts, Config{MaxPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Boxes) != len(ref.Boxes) || tr.Depth() != ref.Depth() {
		t.Errorf("BuildCtx tree shape (%d boxes, depth %d) != Build (%d, %d)",
			len(tr.Boxes), tr.Depth(), len(ref.Boxes), ref.Depth())
	}
}

package kifmm

import (
	"reflect"
	"testing"
)

func somePoints(n int) []float64 {
	pts := make([]float64, 3*n)
	for i := range pts {
		pts[i] = float64(i%17)/17 - 0.5
	}
	return pts
}

func TestPlanKeyDeterministic(t *testing.T) {
	pts := somePoints(50)
	a, err := PlanKey(pts, pts, Options{Kernel: Laplace()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanKey(append([]float64(nil), pts...), append([]float64(nil), pts...), Options{Kernel: Laplace()})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical inputs hashed differently: %s vs %s", a, b)
	}
}

func TestPlanKeyNormalizesDefaults(t *testing.T) {
	pts := somePoints(50)
	zero, err := PlanKey(pts, pts, Options{Kernel: Laplace()})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := PlanKey(pts, pts, Options{
		Kernel: Laplace(), Degree: 6, MaxPoints: 60, PinvTol: 1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if zero != explicit {
		t.Errorf("zero-value options hash differently from explicit defaults")
	}
}

func TestPlanKeyMatchesBuildCoercion(t *testing.T) {
	// Options that the construction path coerces to the same evaluator
	// must hash to the same key: tree.Build treats MaxPoints <= 0 as 60
	// and clamps MaxDepth to (0, 21], translate.NewSet treats
	// PinvTol <= 0 as 1e-10.
	pts := somePoints(50)
	base, err := PlanKey(pts, pts, Options{Kernel: Laplace()})
	if err != nil {
		t.Fatal(err)
	}
	equivalent := []Options{
		{Kernel: Laplace(), MaxPoints: -1},
		{Kernel: Laplace(), MaxDepth: 21},
		{Kernel: Laplace(), MaxDepth: 9999},
		{Kernel: Laplace(), PinvTol: -1},
	}
	for i, opt := range equivalent {
		key, err := PlanKey(pts, pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		if key != base {
			t.Errorf("variant %d (%+v) hashes differently from defaults despite building the same evaluator", i, opt)
		}
	}

	// Any backend other than M2LFFT builds the dense path, so
	// out-of-range backend values must hash like M2LDense.
	dense, err := PlanKey(pts, pts, Options{Kernel: Laplace(), Backend: M2LDense})
	if err != nil {
		t.Fatal(err)
	}
	odd, err := PlanKey(pts, pts, Options{Kernel: Laplace(), Backend: M2LBackend(7)})
	if err != nil {
		t.Fatal(err)
	}
	if odd != dense {
		t.Errorf("backend 7 hashes differently from M2LDense despite identical construction")
	}
}

func TestPlanKeyDiscriminates(t *testing.T) {
	pts := somePoints(50)
	base, err := PlanKey(pts, pts, Options{Kernel: Laplace()})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Kernel: ModLaplace(1)},
		{Kernel: ModLaplace(2)},
		{Kernel: Laplace(), Degree: 8},
		{Kernel: Laplace(), MaxPoints: 120},
		{Kernel: Laplace(), MaxDepth: 3},
		{Kernel: Laplace(), Backend: M2LDense},
		{Kernel: Laplace(), PinvTol: 1e-8},
	}
	seen := map[string]int{base: -1}
	for i, opt := range variants {
		key, err := PlanKey(pts, pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("variant %d collides with variant %d", i, prev)
		}
		seen[key] = i
	}
	// Different geometry must change the key too.
	moved := append([]float64(nil), pts...)
	moved[0] += 1e-9
	key, err := PlanKey(moved, pts, Options{Kernel: Laplace()})
	if err != nil {
		t.Fatal(err)
	}
	if key == base {
		t.Errorf("perturbed geometry did not change the plan key")
	}
}

// TestPlanKeyCoversOptions guards the plan-key hash against silently
// missing a future Options field: every field must be declared either
// hashed (and wired into PlanKey) or result-neutral (like Workers,
// which cannot change what an evaluator computes).
func TestPlanKeyCoversOptions(t *testing.T) {
	declared := map[string]string{}
	for _, f := range planKeyHashedOptionFields {
		declared[f] = "hashed"
	}
	for _, f := range planKeyResultNeutralOptionFields {
		if _, dup := declared[f]; dup {
			t.Fatalf("field %s declared both hashed and result-neutral", f)
		}
		declared[f] = "result-neutral"
	}
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := declared[name]; !ok {
			t.Errorf("Options.%s is in neither planKeyHashedOptionFields nor planKeyResultNeutralOptionFields; decide whether PlanKey must hash it", name)
		}
		delete(declared, name)
	}
	for name := range declared {
		t.Errorf("declared plan-key field %s does not exist on Options", name)
	}
}

// TestPlanKeyIgnoresWorkers: evaluation concurrency is not plan
// identity — hashing it would fragment the cache by machine size.
func TestPlanKeyIgnoresWorkers(t *testing.T) {
	pts := somePoints(50)
	base, err := PlanKey(pts, pts, Options{Kernel: Laplace()})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 97} {
		key, err := PlanKey(pts, pts, Options{Kernel: Laplace(), Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if key != base {
			t.Errorf("Workers=%d changed the plan key", w)
		}
	}
	// Pool is scheduling policy too: an explicit pool must hash like the
	// process default.
	key, err := PlanKey(pts, pts, Options{Kernel: Laplace(), Pool: NewPool(3)})
	if err != nil {
		t.Fatal(err)
	}
	if key != base {
		t.Error("an explicit Pool changed the plan key")
	}
}

func TestPlanKeyErrors(t *testing.T) {
	pts := somePoints(10)
	if _, err := PlanKey(pts, pts, Options{}); err == nil {
		t.Errorf("nil kernel: want error")
	}
}
